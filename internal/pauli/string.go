package pauli

import (
	"fmt"
	"sort"
	"strings"
)

// PauliString is a multi-qubit Pauli operator with a ±1 sign, used to
// express stabilizers such as the SC17 generators of thesis Table 2.1
// and the logical-state stabilizers of Table 2.2. Phases ±i never arise
// for the Hermitian products used in this repository.
type PauliString struct {
	// Ops maps qubit index to the non-identity operator on that qubit.
	Ops map[int]Pauli
	// Negative is true for a −1 sign.
	Negative bool
}

// NewPauliString builds a positive Pauli string from qubit→operator pairs.
func NewPauliString(ops map[int]Pauli) PauliString {
	cp := make(map[int]Pauli, len(ops))
	for q, p := range ops {
		if p != I {
			cp[q] = p
		}
	}
	return PauliString{Ops: cp}
}

// ZString builds the Z⊗...⊗Z string on the given qubits.
func ZString(qubits ...int) PauliString {
	ops := make(map[int]Pauli, len(qubits))
	for _, q := range qubits {
		ops[q] = Z
	}
	return PauliString{Ops: ops}
}

// XString builds the X⊗...⊗X string on the given qubits.
func XString(qubits ...int) PauliString {
	ops := make(map[int]Pauli, len(qubits))
	for _, q := range qubits {
		ops[q] = X
	}
	return PauliString{Ops: ops}
}

// Negated returns the string with its sign flipped.
func (s PauliString) Negated() PauliString {
	return PauliString{Ops: s.Ops, Negative: !s.Negative}
}

// Weight is the number of qubits acted on non-trivially.
func (s PauliString) Weight() int { return len(s.Ops) }

// At returns the operator on qubit q (identity when absent).
func (s PauliString) At(q int) Pauli { return s.Ops[q] }

// Qubits returns the sorted support of the string.
func (s PauliString) Qubits() []int {
	qs := make([]int, 0, len(s.Ops))
	for q := range s.Ops {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	return qs
}

// Commutes reports whether two Pauli strings commute: they anti-commute
// exactly when an odd number of qubit positions hold anti-commuting
// single-qubit operators.
func (s PauliString) Commutes(t PauliString) bool {
	odd := false
	for q, p := range s.Ops {
		if tp, ok := t.Ops[q]; ok && !p.Commutes(tp) {
			odd = !odd
		}
	}
	return !odd
}

// Mul multiplies two Pauli strings, tracking only the ±1 part of the
// phase. The callers in this repository only multiply strings whose
// product is Hermitian with real sign (e.g. products of Z-type strings or
// of X-type strings), for which the ±i bookkeeping cancels; a panic
// guards the unsupported case.
func (s PauliString) Mul(t PauliString) PauliString {
	ops := make(map[int]Pauli, len(s.Ops)+len(t.Ops))
	iPhase := 0 // exponent of i accumulated from Y = iXZ decompositions
	for q, p := range s.Ops {
		ops[q] = p
	}
	for q, tp := range t.Ops {
		p := ops[q]
		// Determine the phase of p·tp relative to the symplectic product.
		iPhase += pairPhase(p, tp)
		prod := p.Mul(tp)
		if prod == I {
			delete(ops, q)
		} else {
			ops[q] = prod
		}
	}
	if iPhase%2 != 0 {
		panic("pauli: product has imaginary phase; unsupported by PauliString")
	}
	neg := s.Negative != t.Negative
	if iPhase%4 == 2 {
		neg = !neg
	}
	return PauliString{Ops: ops, Negative: neg}
}

// pairPhase returns the exponent k such that p·q = i^k · (p⊕q) under the
// convention Y = iXZ, i.e. products are normal-ordered as X^a Z^b.
func pairPhase(p, q Pauli) int {
	// Write p = i^dp X^px Z^pz with dp = 1 when p = Y, else 0.
	px, pz := b2i(p.HasX()), b2i(p.HasZ())
	qx, qz := b2i(q.HasX()), b2i(q.HasZ())
	dp := 0
	if p == Y {
		dp = 1
	}
	if q == Y {
		dp++
	}
	// Reordering Z^pz X^qx introduces (−1)^(pz·qx) = i^(2·pz·qx).
	dp += 2 * pz * qx
	// The result X^(px+qx) Z^(pz+qz) must be renormalized: if the result
	// is Y we must extract i^-1; XX or ZZ contribute nothing.
	rx, rz := (px+qx)%2, (pz+qz)%2
	if rx == 1 && rz == 1 {
		dp += 3 // multiply by i^-1 ≡ i^3 to express XZ as −iY... sign folded below
	}
	return dp
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// String renders the string like "-Z0Z4Z8".
func (s PauliString) String() string {
	var b strings.Builder
	if s.Negative {
		b.WriteByte('-')
	} else {
		b.WriteByte('+')
	}
	qs := s.Qubits()
	if len(qs) == 0 {
		b.WriteByte('I')
		return b.String()
	}
	for _, q := range qs {
		fmt.Fprintf(&b, "%s%d", s.Ops[q], q)
	}
	return b.String()
}
