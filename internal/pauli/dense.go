package pauli

import (
	"fmt"
	"strings"
)

// Dense is a dense, reusable multi-qubit Pauli operator: Ops[q] holds the
// operator acting on qubit q (I for identity) and Negative the ±1 sign.
// Unlike the map-backed PauliString it is laid out contiguously and sorted
// by construction, so extraction paths that run once per tableau row (the
// Stabilizers / canonical-compare path) can refill one Dense buffer
// instead of allocating a map per row.
type Dense struct {
	// Ops is indexed by qubit; entries are I where the operator acts
	// trivially.
	Ops []Pauli
	// Negative is true for a −1 sign.
	Negative bool
}

// NewDense returns a +I⊗n buffer.
func NewDense(n int) *Dense {
	return &Dense{Ops: make([]Pauli, n)}
}

// Reset resizes the buffer to n qubits and clears it to +I⊗n, reusing the
// backing array when its capacity suffices.
func (d *Dense) Reset(n int) {
	if cap(d.Ops) < n {
		d.Ops = make([]Pauli, n)
		d.Negative = false
		return
	}
	d.Ops = d.Ops[:n]
	for i := range d.Ops {
		d.Ops[i] = I
	}
	d.Negative = false
}

// Len is the number of qubits the buffer spans.
func (d *Dense) Len() int { return len(d.Ops) }

// At returns the operator on qubit q (identity when out of range).
func (d *Dense) At(q int) Pauli {
	if q < 0 || q >= len(d.Ops) {
		return I
	}
	return d.Ops[q]
}

// Set assigns the operator on qubit q.
func (d *Dense) Set(q int, p Pauli) { d.Ops[q] = p }

// Weight counts the qubits acted on non-trivially.
func (d *Dense) Weight() int {
	w := 0
	for _, p := range d.Ops {
		if p != I {
			w++
		}
	}
	return w
}

// Sparse converts the buffer into the map-backed PauliString, allocating
// a map sized exactly to the weight.
func (d *Dense) Sparse() PauliString {
	ops := make(map[int]Pauli, d.Weight())
	for q, p := range d.Ops {
		if p != I {
			ops[q] = p
		}
	}
	return PauliString{Ops: ops, Negative: d.Negative}
}

// Equal reports element-wise equality including the sign.
func (d *Dense) Equal(o *Dense) bool {
	if d.Negative != o.Negative || len(d.Ops) != len(o.Ops) {
		return false
	}
	for i, p := range d.Ops {
		if p != o.Ops[i] {
			return false
		}
	}
	return true
}

// String renders like "-Z0Z4Z8"; the support is emitted in qubit order
// without any sorting pass.
func (d *Dense) String() string {
	var b strings.Builder
	if d.Negative {
		b.WriteByte('-')
	} else {
		b.WriteByte('+')
	}
	wrote := false
	for q, p := range d.Ops {
		if p == I {
			continue
		}
		fmt.Fprintf(&b, "%s%d", p, q)
		wrote = true
	}
	if !wrote {
		b.WriteByte('I')
	}
	return b.String()
}
