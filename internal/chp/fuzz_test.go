package chp

import (
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

// TestRandomOpFuzz hammers the tableau with long random sequences of
// every supported operation (including mid-sequence measurements and
// resets) and checks the internal phase invariant never trips and the
// final state is self-consistent: every extracted stabilizer has
// deterministic expectation +1. This is the regression net for the
// measurement-branch phase bug (the destabilizer partner of the pivot
// row anti-commutes with it).
func TestRandomOpFuzz(t *testing.T) {
	const (
		seeds = 300
		n     = 5
		kOps  = 250
	)
	names := []string{"x", "y", "z", "h", "s", "sdg", "cnot", "cz", "swap", "m", "r"}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := New(n, rng)
		for i := 0; i < kOps; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			switch names[rng.Intn(len(names))] {
			case "x":
				tb.X(a)
			case "y":
				tb.Y(a)
			case "z":
				tb.Z(a)
			case "h":
				tb.H(a)
			case "s":
				tb.S(a)
			case "sdg":
				tb.Sdg(a)
			case "cnot":
				tb.CNOT(a, b)
			case "cz":
				tb.CZ(a, b)
			case "swap":
				tb.SWAP(a, b)
			case "m":
				tb.MeasureBit(a)
			case "r":
				tb.Reset(a)
			}
		}
		for _, stab := range tb.Stabilizers() {
			v, det := tb.ExpectPauli(stab)
			if !det || v != 1 {
				t.Fatalf("seed %d: stabilizer %v not satisfied (v=%d det=%v)", seed, stab, v, det)
			}
		}
		// Measurements after the fuzz must be repeatable.
		for q := 0; q < n; q++ {
			first := tb.MeasureBit(q)
			if again := tb.MeasureBit(q); again != first {
				t.Fatalf("seed %d: unrepeatable measurement on q%d", seed, q)
			}
		}
	}
	// The fuzz above also guards the Y-parity identity used in
	// pauli.PauliString; a spot check on a GHZ-like state:
	tb := New(2, rand.New(rand.NewSource(1)))
	tb.H(0)
	tb.CNOT(0, 1)
	yy := pauli.NewPauliString(map[int]pauli.Pauli{0: pauli.Y, 1: pauli.Y})
	if v, det := tb.ExpectPauli(yy); !det || v != -1 {
		t.Fatalf("⟨YY⟩ on Bell = %d det=%v, want −1", v, det)
	}
}
