// Package chp implements an Aaronson–Gottesman stabilizer-tableau
// simulator, the in-process substitute for the CHP back-end of the thesis
// (§4.1.2). It simulates Clifford circuits (H, S, CNOT and the gates
// derived from them) on hundreds of qubits in polynomial time, with
// projective computational-basis measurement, reset, stabilizer
// extraction and canonical-form state comparison.
//
// The tableau holds n destabilizer rows followed by n stabilizer rows,
// each row a Pauli operator stored as bit-packed X and Z component words
// plus a sign bit, exactly as in Aaronson & Gottesman, "Improved
// simulation of stabilizer circuits" (2004).
package chp

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/pauli"
)

// Tableau is the stabilizer state of n qubits, initially |0...0⟩.
type Tableau struct {
	n     int
	words int
	// x[i] and z[i] are the X/Z component bitmasks of row i. Rows
	// 0..n-1 are destabilizers, n..2n-1 stabilizers, row 2n is scratch.
	x   [][]uint64
	z   [][]uint64
	r   []uint8 // sign bit per row: 0 → +1, 1 → −1
	rng *rand.Rand
}

// New creates the all-zeros stabilizer state of n qubits. The RNG drives
// the outcomes of non-deterministic measurements.
func New(n int, rng *rand.Rand) *Tableau {
	if n < 1 {
		panic("chp: need at least one qubit")
	}
	w := (n + 63) / 64
	t := &Tableau{n: n, words: w, rng: rng}
	rows := 2*n + 1
	t.x = make([][]uint64, rows)
	t.z = make([][]uint64, rows)
	t.r = make([]uint8, rows)
	for i := range t.x {
		t.x[i] = make([]uint64, w)
		t.z[i] = make([]uint64, w)
	}
	for q := 0; q < n; q++ {
		t.x[q][q/64] |= 1 << uint(q%64)   // destabilizer q = X_q
		t.z[n+q][q/64] |= 1 << uint(q%64) // stabilizer q = Z_q
	}
	return t
}

// NumQubits returns n.
func (t *Tableau) NumQubits() int { return t.n }

func (t *Tableau) check(q int) {
	if q < 0 || q >= t.n {
		panic(fmt.Sprintf("chp: qubit %d out of range [0,%d)", q, t.n))
	}
}

func (t *Tableau) getBit(row []uint64, q int) bool {
	return row[q/64]&(1<<uint(q%64)) != 0
}

func (t *Tableau) setBit(row []uint64, q int, v bool) {
	if v {
		row[q/64] |= 1 << uint(q%64)
	} else {
		row[q/64] &^= 1 << uint(q%64)
	}
}

// H applies a Hadamard gate to qubit q.
func (t *Tableau) H(q int) {
	t.check(q)
	w, m := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.x[i][w]&m, t.z[i][w]&m
		if xi != 0 && zi != 0 {
			t.r[i] ^= 1
		}
		t.x[i][w] = (t.x[i][w] &^ m) | zi
		t.z[i][w] = (t.z[i][w] &^ m) | xi
	}
}

// S applies the phase gate to qubit q.
func (t *Tableau) S(q int) {
	t.check(q)
	w, m := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.x[i][w]&m, t.z[i][w]&m
		if xi != 0 && zi != 0 {
			t.r[i] ^= 1
		}
		t.z[i][w] ^= xi
	}
}

// Sdg applies the inverse phase gate (S³).
func (t *Tableau) Sdg(q int) { t.S(q); t.S(q); t.S(q) }

// X applies a Pauli-X gate: conjugation flips the sign of rows with a Z
// component on q.
func (t *Tableau) X(q int) {
	t.check(q)
	w, m := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if t.z[i][w]&m != 0 {
			t.r[i] ^= 1
		}
	}
}

// Z applies a Pauli-Z gate.
func (t *Tableau) Z(q int) {
	t.check(q)
	w, m := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if t.x[i][w]&m != 0 {
			t.r[i] ^= 1
		}
	}
}

// Y applies a Pauli-Y gate.
func (t *Tableau) Y(q int) {
	t.check(q)
	w, m := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if (t.x[i][w]&m != 0) != (t.z[i][w]&m != 0) {
			t.r[i] ^= 1
		}
	}
}

// CNOT applies a controlled-NOT with control c and target d.
func (t *Tableau) CNOT(c, d int) {
	t.check(c)
	t.check(d)
	if c == d {
		panic("chp: CNOT control equals target")
	}
	cw, cm := c/64, uint64(1)<<uint(c%64)
	dw, dm := d/64, uint64(1)<<uint(d%64)
	for i := 0; i < 2*t.n; i++ {
		xc := t.x[i][cw]&cm != 0
		zc := t.z[i][cw]&cm != 0
		xd := t.x[i][dw]&dm != 0
		zd := t.z[i][dw]&dm != 0
		if xc && zd && (xd == zc) {
			t.r[i] ^= 1
		}
		if xc {
			t.x[i][dw] ^= dm
		}
		if zd {
			t.z[i][cw] ^= cm
		}
	}
}

// CZ applies a controlled-Z gate (H on target, CNOT, H on target).
func (t *Tableau) CZ(a, b int) {
	t.H(b)
	t.CNOT(a, b)
	t.H(b)
}

// SWAP exchanges two qubits (three CNOTs).
func (t *Tableau) SWAP(a, b int) {
	t.CNOT(a, b)
	t.CNOT(b, a)
	t.CNOT(a, b)
}

// rowsum multiplies row h by row i (h ← h·i), maintaining the sign via
// the Aaronson–Gottesman phase function g, evaluated bit-parallel per
// 64-bit word.
func (t *Tableau) rowsum(h, i int) {
	sum := 2*int(t.r[h]) + 2*int(t.r[i])
	for w := 0; w < t.words; w++ {
		x1, z1 := t.x[h][w], t.z[h][w]
		x2, z2 := t.x[i][w], t.z[i][w]
		// g = +1 bit positions.
		pos := (x1 & z1 & z2 &^ x2) | (x1 &^ z1 & z2 & x2) | (z1 &^ x1 & x2 &^ z2)
		// g = −1 bit positions.
		neg := (x1 & z1 & x2 &^ z2) | (x1 &^ z1 & z2 &^ x2) | (z1 &^ x1 & x2 & z2)
		sum += bits.OnesCount64(pos) - bits.OnesCount64(neg)
		t.x[h][w] = x1 ^ x2
		t.z[h][w] = z1 ^ z2
	}
	sum %= 4
	if sum < 0 {
		sum += 4
	}
	switch sum {
	case 0:
		t.r[h] = 0
	case 2:
		t.r[h] = 1
	default:
		panic("chp: rowsum phase is imaginary; tableau corrupted")
	}
}

// zeroRow clears row h.
func (t *Tableau) zeroRow(h int) {
	for w := 0; w < t.words; w++ {
		t.x[h][w] = 0
		t.z[h][w] = 0
	}
	t.r[h] = 0
}

// copyRow copies row src into row dst.
func (t *Tableau) copyRow(dst, src int) {
	copy(t.x[dst], t.x[src])
	copy(t.z[dst], t.z[src])
	t.r[dst] = t.r[src]
}

// Measure performs a computational-basis measurement of qubit q,
// returning 0 or 1 and whether the outcome was deterministic.
func (t *Tableau) Measure(q int) (outcome int, deterministic bool) {
	t.check(q)
	w, m := q/64, uint64(1)<<uint(q%64)
	// Look for a stabilizer row with an X component on q.
	p := -1
	for i := t.n; i < 2*t.n; i++ {
		if t.x[i][w]&m != 0 {
			p = i
			break
		}
	}
	if p >= 0 {
		// Random outcome: all other rows with x bit set absorb row p.
		// Row p−n (the destabilizer partner of the pivot) is skipped: it
		// is the one row that may anti-commute with row p — the product
		// would carry an imaginary phase — and it is overwritten right
		// below, so the multiplication is unnecessary.
		for i := 0; i < 2*t.n; i++ {
			if i != p && i != p-t.n && t.x[i][w]&m != 0 {
				t.rowsum(i, p)
			}
		}
		t.copyRow(p-t.n, p)
		t.zeroRow(p)
		t.setBit(t.z[p], q, true)
		out := 0
		if t.rng.Intn(2) == 1 {
			out = 1
			t.r[p] = 1
		}
		return out, false
	}
	// Deterministic outcome: accumulate stabilizer rows whose
	// destabilizer partner has an X component on q.
	scratch := 2 * t.n
	t.zeroRow(scratch)
	for i := 0; i < t.n; i++ {
		if t.x[i][w]&m != 0 {
			t.rowsum(scratch, i+t.n)
		}
	}
	return int(t.r[scratch]), true
}

// MeasureBit measures and returns only the outcome.
func (t *Tableau) MeasureBit(q int) int {
	out, _ := t.Measure(q)
	return out
}

// Reset forces qubit q to |0⟩ by measuring and flipping when necessary.
func (t *Tableau) Reset(q int) {
	if out, _ := t.Measure(q); out == 1 {
		t.X(q)
	}
}

// Clone deep-copies the tableau (sharing the RNG).
func (t *Tableau) Clone() *Tableau {
	cp := &Tableau{n: t.n, words: t.words, rng: t.rng}
	cp.x = make([][]uint64, len(t.x))
	cp.z = make([][]uint64, len(t.z))
	cp.r = append([]uint8(nil), t.r...)
	for i := range t.x {
		cp.x[i] = append([]uint64(nil), t.x[i]...)
		cp.z[i] = append([]uint64(nil), t.z[i]...)
	}
	return cp
}

// rowToPauliString converts tableau row i into a PauliString.
func (t *Tableau) rowToPauliString(i int) pauli.PauliString {
	ops := map[int]pauli.Pauli{}
	for q := 0; q < t.n; q++ {
		xb := t.getBit(t.x[i], q)
		zb := t.getBit(t.z[i], q)
		switch {
		case xb && zb:
			ops[q] = pauli.Y
		case xb:
			ops[q] = pauli.X
		case zb:
			ops[q] = pauli.Z
		}
	}
	return pauli.PauliString{Ops: ops, Negative: t.r[i] == 1}
}

// Stabilizers returns the current stabilizer generators as Pauli strings.
func (t *Tableau) Stabilizers() []pauli.PauliString {
	out := make([]pauli.PauliString, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.rowToPauliString(t.n + i)
	}
	return out
}
