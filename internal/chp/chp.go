// Package chp implements an Aaronson–Gottesman stabilizer-tableau
// simulator, the in-process substitute for the CHP back-end of the thesis
// (§4.1.2). It simulates Clifford circuits (H, S, CNOT and the gates
// derived from them) on hundreds of qubits in polynomial time, with
// projective computational-basis measurement, reset, stabilizer
// extraction and canonical-form state comparison.
//
// The tableau holds n destabilizer rows followed by n stabilizer rows,
// each row a Pauli operator with a sign bit, as in Aaronson & Gottesman,
// "Improved simulation of stabilizer circuits" (2004) — but stored
// column-major (transposed): for every qubit the X and Z bits of all
// 2n+1 rows are packed into []uint64 column words, and the sign bits of
// all rows form one more bit-plane. A single-qubit Clifford gate touches
// one column, so it collapses to a handful of word-wide boolean
// operations over ceil((2n+1)/64) words instead of a loop over 2n rows;
// for the 17-qubit ninja star (35 rows) every gate is a few single-word
// operations. Measurement uses the same word-parallelism across rows: all
// rows absorbing the pivot are multiplied simultaneously with a
// bit-sliced mod-4 phase accumulator, and deterministic outcomes are
// derived per column from popcounts and a carry-less prefix-parity
// product. The row-major layout survives as the test-only Reference
// implementation (reference.go), which the differential fuzz tests drive
// in lockstep with this one.
package chp

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/pauli"
)

// Tableau is the stabilizer state of n qubits, initially |0...0⟩.
type Tableau struct {
	n        int
	rowWords int // words per column bit-plane: ceil((2n+1)/64)
	qWords   int // words per qubit-major packed row: ceil(n/64)
	// xz holds 2n bit-planes of rowWords words each: plane 2q is the
	// X column of qubit q (bit i = X component of row i), plane 2q+1
	// its Z column. Rows 0..n-1 are destabilizers, n..2n-1 stabilizers,
	// row 2n is scratch.
	xz []uint64
	// sign is the bit-plane of row signs: bit i set → row i carries −1.
	sign []uint64
	// stabMask/destabMask select the stabilizer (n..2n-1) and
	// destabilizer (0..n-1) row ranges of a bit-plane.
	stabMask, destabMask []uint64
	rng                  *rand.Rand
	// Preallocated measurement scratch planes (no per-measure allocs):
	// m marks absorbing rows, ms selected stabilizer rows, s0/s1 are the
	// low/high bits of the bit-sliced mod-4 phase accumulator.
	m, ms, s0, s1 []uint64
	dense         pauli.Dense // reusable row-extraction buffer
}

// New creates the all-zeros stabilizer state of n qubits. The RNG drives
// the outcomes of non-deterministic measurements.
func New(n int, rng *rand.Rand) *Tableau {
	if n < 1 {
		panic("chp: need at least one qubit")
	}
	rows := 2*n + 1
	rw := (rows + 63) / 64
	t := &Tableau{
		n:        n,
		rowWords: rw,
		qWords:   (n + 63) / 64,
		xz:       make([]uint64, 2*n*rw),
		sign:     make([]uint64, rw),
		rng:      rng,
		m:        make([]uint64, rw),
		ms:       make([]uint64, rw),
		s0:       make([]uint64, rw),
		s1:       make([]uint64, rw),
	}
	t.stabMask = make([]uint64, rw)
	t.destabMask = make([]uint64, rw)
	for i := 0; i < n; i++ {
		setPlaneBit(t.destabMask, i)
		setPlaneBit(t.stabMask, n+i)
	}
	for q := 0; q < n; q++ {
		setPlaneBit(t.xcol(q), q)   // destabilizer q = X_q
		setPlaneBit(t.zcol(q), n+q) // stabilizer q = Z_q
	}
	return t
}

// NumQubits returns n.
func (t *Tableau) NumQubits() int { return t.n }

// Reinit restores the all-zeros state |0...0⟩ in place and replaces the
// measurement RNG, reusing every allocation — equivalent to New(n, rng)
// for an already-sized tableau. The Monte-Carlo drivers use it to recycle
// one tableau across samples instead of reallocating the whole stack.
func (t *Tableau) Reinit(rng *rand.Rand) {
	for i := range t.xz {
		t.xz[i] = 0
	}
	for i := range t.sign {
		t.sign[i] = 0
	}
	for q := 0; q < t.n; q++ {
		setPlaneBit(t.xcol(q), q)     // destabilizer q = X_q
		setPlaneBit(t.zcol(q), t.n+q) // stabilizer q = Z_q
	}
	t.rng = rng
}

func (t *Tableau) check(q int) {
	if q < 0 || q >= t.n {
		// The Sprintf only runs on the panic path, never on a
		// successful gate application.
		//qa:allow hotpath panic-path formatting, unreachable in valid circuits
		panic(fmt.Sprintf("chp: qubit %d out of range [0,%d)", q, t.n))
	}
}

// xcol returns the X bit-plane of qubit q (one bit per row).
func (t *Tableau) xcol(q int) []uint64 {
	base := 2 * q * t.rowWords
	return t.xz[base : base+t.rowWords : base+t.rowWords]
}

// zcol returns the Z bit-plane of qubit q.
func (t *Tableau) zcol(q int) []uint64 {
	base := (2*q + 1) * t.rowWords
	return t.xz[base : base+t.rowWords : base+t.rowWords]
}

func planeBit(p []uint64, i int) bool { return p[i>>6]&(1<<uint(i&63)) != 0 }
func setPlaneBit(p []uint64, i int)   { p[i>>6] |= 1 << uint(i&63) }
func clearPlaneBit(p []uint64, i int) { p[i>>6] &^= 1 << uint(i&63) }

func setPlaneBitTo(p []uint64, i int, v bool) {
	if v {
		setPlaneBit(p, i)
	} else {
		clearPlaneBit(p, i)
	}
}

// shiftPlaneLeft writes dst = src << k across words (bits move toward
// higher row indices).
func shiftPlaneLeft(dst, src []uint64, k int) {
	ws, bs := k>>6, uint(k&63)
	for w := len(dst) - 1; w >= 0; w-- {
		var v uint64
		if sw := w - ws; sw >= 0 {
			v = src[sw] << bs
			if bs > 0 && sw > 0 {
				v |= src[sw-1] >> (64 - bs)
			}
		}
		dst[w] = v
	}
}

// prefixParity64 returns the inclusive prefix parity of x: output bit i is
// the parity of input bits 0..i (a carry-less multiply by all-ones).
func prefixParity64(x uint64) uint64 {
	x ^= x << 1
	x ^= x << 2
	x ^= x << 4
	x ^= x << 8
	x ^= x << 16
	x ^= x << 32
	return x
}

// The gate methods below touch only the columns of their operand qubits.
// They deliberately include the scratch row (bit 2n) in the word-wide
// updates: it is zeroed before every use, so stale bits are harmless.

// H applies a Hadamard gate to qubit q: X↔Z per row, sign flips on Y.
//
//qa:hotpath
func (t *Tableau) H(q int) {
	t.check(q)
	x, z, s := t.xcol(q), t.zcol(q), t.sign
	for w := range x {
		xw, zw := x[w], z[w]
		s[w] ^= xw & zw
		x[w], z[w] = zw, xw
	}
}

// S applies the phase gate to qubit q: X→Y, Y→−X.
//
//qa:hotpath
func (t *Tableau) S(q int) {
	t.check(q)
	x, z, s := t.xcol(q), t.zcol(q), t.sign
	for w := range x {
		xw := x[w]
		s[w] ^= xw & z[w]
		z[w] ^= xw
	}
}

// Sdg applies the inverse phase gate directly: X→−Y, Y→X.
//
//qa:hotpath
func (t *Tableau) Sdg(q int) {
	t.check(q)
	x, z, s := t.xcol(q), t.zcol(q), t.sign
	for w := range x {
		xw := x[w]
		s[w] ^= xw &^ z[w]
		z[w] ^= xw
	}
}

// X applies a Pauli-X gate: conjugation flips the sign of rows with a Z
// component on q.
//
//qa:hotpath
func (t *Tableau) X(q int) {
	t.check(q)
	z, s := t.zcol(q), t.sign
	for w := range z {
		s[w] ^= z[w]
	}
}

// Z applies a Pauli-Z gate.
//
//qa:hotpath
func (t *Tableau) Z(q int) {
	t.check(q)
	x, s := t.xcol(q), t.sign
	for w := range x {
		s[w] ^= x[w]
	}
}

// Y applies a Pauli-Y gate.
//
//qa:hotpath
func (t *Tableau) Y(q int) {
	t.check(q)
	x, z, s := t.xcol(q), t.zcol(q), t.sign
	for w := range x {
		s[w] ^= x[w] ^ z[w]
	}
}

// CNOT applies a controlled-NOT with control c and target d.
//
//qa:hotpath
func (t *Tableau) CNOT(c, d int) {
	t.check(c)
	t.check(d)
	if c == d {
		panic("chp: CNOT control equals target")
	}
	xc, zc := t.xcol(c), t.zcol(c)
	xd, zd := t.xcol(d), t.zcol(d)
	s := t.sign
	for w := range xc {
		xcw, zcw := xc[w], zc[w]
		xdw, zdw := xd[w], zd[w]
		s[w] ^= xcw & zdw &^ (xdw ^ zcw)
		xd[w] = xdw ^ xcw
		zc[w] = zcw ^ zdw
	}
}

// CZ applies a controlled-Z gate: X_a→X_aZ_b, X_b→X_bZ_a, sign flips on
// X⊗X-type rows with unequal Z components (the H·CNOT·H composition
// collapsed into one word-parallel pass).
//
//qa:hotpath
func (t *Tableau) CZ(a, b int) {
	t.check(a)
	t.check(b)
	if a == b {
		panic("chp: CZ control equals target")
	}
	xa, za := t.xcol(a), t.zcol(a)
	xb, zb := t.xcol(b), t.zcol(b)
	s := t.sign
	for w := range xa {
		xaw, zaw := xa[w], za[w]
		xbw, zbw := xb[w], zb[w]
		s[w] ^= xaw & xbw & (zaw ^ zbw)
		za[w] = zaw ^ xbw
		zb[w] = zbw ^ xaw
	}
}

// SWAP exchanges two qubits by swapping their column planes; no row sign
// ever changes under relabeling.
//
//qa:hotpath
func (t *Tableau) SWAP(a, b int) {
	t.check(a)
	t.check(b)
	if a == b {
		return
	}
	xa, za := t.xcol(a), t.zcol(a)
	xb, zb := t.xcol(b), t.zcol(b)
	for w := range xa {
		xa[w], xb[w] = xb[w], xa[w]
		za[w], zb[w] = zb[w], za[w]
	}
}

// Measure performs a computational-basis measurement of qubit q,
// returning 0 or 1 and whether the outcome was deterministic.
//
//qa:hotpath
func (t *Tableau) Measure(q int) (outcome int, deterministic bool) {
	t.check(q)
	x := t.xcol(q)
	// Look for the first stabilizer row with an X component on q.
	for w, word := range t.stabMask {
		if word &= x[w]; word != 0 {
			p := w<<6 + bits.TrailingZeros64(word)
			return t.measureRandom(q, p), false
		}
	}
	return t.measureDeterministic(q), true
}

// measureRandom handles the non-deterministic branch: every other row
// with an X component on q absorbs pivot row p — all of them at once,
// word-parallel across rows, with a bit-sliced mod-4 phase accumulator —
// then the pivot pair is rewritten and the outcome drawn from the RNG.
// The update is exactly the sequence of Aaronson–Gottesman rowsums of the
// row-major layout (each absorbing row reads only itself and the
// unchanged pivot), so seeded runs stay bit-for-bit reproducible.
//
//qa:hotpath
func (t *Tableau) measureRandom(q, p int) int {
	n, rw := t.n, t.rowWords
	d := p - n // destabilizer partner of the pivot
	// Absorbing rows: X component on q, excluding the pivot, its partner
	// (overwritten below; it may anti-commute with the pivot) and the
	// scratch row.
	m := t.m
	copy(m, t.xcol(q))
	clearPlaneBit(m, p)
	clearPlaneBit(m, d)
	clearPlaneBit(m, 2*n)
	// Phase accumulator per absorbing row: sum = 2·r_h + 2·r_p + Σ g.
	s0, s1 := t.s0, t.s1
	rp := planeBit(t.sign, p)
	for w := 0; w < rw; w++ {
		s0[w] = 0
		if rp {
			s1[w] = ^t.sign[w]
		} else {
			s1[w] = t.sign[w]
		}
	}
	pw, pb := p>>6, uint64(1)<<uint(p&63)
	for c := 0; c < n; c++ {
		xc, zc := t.xcol(c), t.zcol(c)
		x2 := xc[pw]&pb != 0
		z2 := zc[pw]&pb != 0
		// Fold the pivot-pair rewrite into the same column pass: row p
		// moves onto its destabilizer partner and is cleared. The
		// absorbing mask excludes both rows, so the order is immaterial.
		setPlaneBitTo(xc, d, x2)
		clearPlaneBit(xc, p)
		setPlaneBitTo(zc, d, z2)
		clearPlaneBit(zc, p)
		if !x2 && !z2 {
			continue
		}
		for w := 0; w < rw; w++ {
			mm := m[w]
			x1, z1 := xc[w], zc[w]
			// Specialize the Aaronson–Gottesman phase function g for the
			// pivot's Pauli on this column (X, Z or Y).
			var pos, neg uint64
			switch {
			case x2 && z2: // pivot has Y
				pos, neg = x1&^z1, z1&^x1
			case x2: // pivot has X
				pos, neg = z1&^x1, x1&z1
			default: // pivot has Z
				pos, neg = x1&z1, x1&^z1
			}
			pos &= mm
			neg &= mm
			s1[w] ^= s0[w] & pos // sum += 1 on pos lanes
			s0[w] ^= pos
			s1[w] ^= ^s0[w] & neg // sum -= 1 on neg lanes
			s0[w] ^= neg
			if x2 {
				xc[w] ^= mm
			}
			if z2 {
				zc[w] ^= mm
			}
		}
	}
	for w := 0; w < rw; w++ {
		if s0[w]&m[w] != 0 {
			panic("chp: rowsum phase is imaginary; tableau corrupted")
		}
		t.sign[w] = t.sign[w]&^m[w] | s1[w]&m[w]
	}
	// The pivot pair: the partner inherits the pivot row (including its
	// sign) and the pivot becomes ±Z_q with the drawn outcome.
	setPlaneBitTo(t.sign, d, rp)
	clearPlaneBit(t.sign, p)
	setPlaneBit(t.zcol(q), p)
	out := 0
	if t.rng.Intn(2) == 1 {
		out = 1
		setPlaneBit(t.sign, p)
	}
	return out
}

// measureDeterministic evaluates the outcome without mutating the state:
// the product of the stabilizer rows selected by destabilizers with an X
// component on q is ±Z_q, and its sign is the outcome. Because distinct
// columns commute, the sign of the ordered row product factors into
// per-column phases, each computed word-parallel across all selected
// rows from popcounts and a prefix-parity word.
//
//qa:hotpath
func (t *Tableau) measureDeterministic(q int) int {
	n, rw := t.n, t.rowWords
	md := t.m
	xq := t.xcol(q)
	for w := 0; w < rw; w++ {
		md[w] = xq[w] & t.destabMask[w]
	}
	ms := t.ms
	shiftPlaneLeft(ms, md, n)
	return t.productSignExponent(ms) >> 1
}

// productSignExponent returns the i-exponent (0 or 2, i.e. sign + or −)
// of the ordered product of the rows selected by the bit-plane mask ms,
// multiplied in ascending row order. Panics when the exponent is odd,
// which cannot happen for commuting selections. Writing each single-qubit
// factor as σ = i^{xz}·X^x Z^z, the product over one column contributes
//
//	Σ_l x_l z_l  +  2·Σ_{j<l} z_j x_l  −  X·Z   (mod 4)
//
// with X = Σx_l, Z = Σz_l mod 2: the first term unpacks the Y factors,
// the second counts the Z·X reorderings, the last renormalizes the
// result. The middle sum needs only its parity, which one prefix-parity
// word per 64 rows delivers without iterating the selected rows.
//
//qa:hotpath
func (t *Tableau) productSignExponent(ms []uint64) int {
	n, rw := t.n, t.rowWords
	e := 0
	for w := 0; w < rw; w++ {
		e += 2 * bits.OnesCount64(t.sign[w]&ms[w])
	}
	for c := 0; c < n; c++ {
		xc, zc := t.xcol(c), t.zcol(c)
		a, b := 0, 0
		xp, zp := 0, 0
		carry := uint64(0)
		for w := 0; w < rw; w++ {
			mx := xc[w] & ms[w]
			mz := zc[w] & ms[w]
			a += bits.OnesCount64(mx & mz)
			strict := prefixParity64(mz)<<1 ^ carry
			b ^= bits.OnesCount64(mx&strict) & 1
			if bits.OnesCount64(mz)&1 == 1 {
				carry = ^carry
			}
			xp += bits.OnesCount64(mx)
			zp += bits.OnesCount64(mz)
		}
		e += a + 2*b + 3*(xp&1)*(zp&1)
	}
	e &= 3
	if e&1 != 0 {
		panic("chp: rowsum phase is imaginary; tableau corrupted")
	}
	return e
}

// productComponent reports the X/Z components on column c of the product
// of the rows selected by ms (the XOR, i.e. popcount parity, of the
// selected bits).
func (t *Tableau) productComponent(ms []uint64, c int) (x, z bool) {
	xc, zc := t.xcol(c), t.zcol(c)
	xp, zp := 0, 0
	for w := range ms {
		xp ^= bits.OnesCount64(xc[w]&ms[w]) & 1
		zp ^= bits.OnesCount64(zc[w]&ms[w]) & 1
	}
	return xp == 1, zp == 1
}

// MeasureBit measures and returns only the outcome.
func (t *Tableau) MeasureBit(q int) int {
	out, _ := t.Measure(q)
	return out
}

// Reset forces qubit q to |0⟩ by measuring and flipping when necessary.
func (t *Tableau) Reset(q int) {
	if out, _ := t.Measure(q); out == 1 {
		t.X(q)
	}
}

// Clone deep-copies the tableau (sharing the RNG).
func (t *Tableau) Clone() *Tableau {
	rw := t.rowWords
	cp := &Tableau{
		n:          t.n,
		rowWords:   rw,
		qWords:     t.qWords,
		xz:         append([]uint64(nil), t.xz...),
		sign:       append([]uint64(nil), t.sign...),
		stabMask:   t.stabMask,
		destabMask: t.destabMask,
		rng:        t.rng,
		m:          make([]uint64, rw),
		ms:         make([]uint64, rw),
		s0:         make([]uint64, rw),
		s1:         make([]uint64, rw),
	}
	return cp
}

// StabilizerInto gathers stabilizer generator i (0 ≤ i < n) into the
// reusable dense buffer without allocating.
func (t *Tableau) StabilizerInto(i int, d *pauli.Dense) {
	t.rowInto(t.n+i, d)
}

// rowInto extracts tableau row ri into a dense buffer.
func (t *Tableau) rowInto(ri int, d *pauli.Dense) {
	d.Reset(t.n)
	w, b := ri>>6, uint64(1)<<uint(ri&63)
	rw := t.rowWords
	base := w
	for q := 0; q < t.n; q++ {
		var p pauli.Pauli
		if t.xz[2*q*rw+base]&b != 0 {
			p = pauli.X
		}
		if t.xz[(2*q+1)*rw+base]&b != 0 {
			p |= pauli.Z
		}
		d.Ops[q] = p
	}
	d.Negative = t.sign[w]&b != 0
}

// Stabilizers returns the current stabilizer generators as Pauli strings.
func (t *Tableau) Stabilizers() []pauli.PauliString {
	out := make([]pauli.PauliString, t.n)
	for i := 0; i < t.n; i++ {
		t.StabilizerInto(i, &t.dense)
		out[i] = t.dense.Sparse()
	}
	return out
}
