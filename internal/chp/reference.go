package chp

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/pauli"
)

// Reference is the original row-major bit-packed tableau, kept verbatim
// as the differential-testing oracle for the column-major Tableau. It is
// not used by any production code path: the fuzz tests drive identical
// gate/measure sequences through both layouts and assert identical
// outcomes, signs and canonical stabilizer sets. Do not optimize it —
// its value is being the unchanged pre-transpose kernel.
type Reference struct {
	n     int
	words int
	// x[i] and z[i] are the X/Z component bitmasks of row i. Rows
	// 0..n-1 are destabilizers, n..2n-1 stabilizers, row 2n is scratch.
	x   [][]uint64
	z   [][]uint64
	r   []uint8 // sign bit per row: 0 → +1, 1 → −1
	rng *rand.Rand
}

// NewReference creates the all-zeros row-major stabilizer state.
func NewReference(n int, rng *rand.Rand) *Reference {
	if n < 1 {
		panic("chp: need at least one qubit")
	}
	w := (n + 63) / 64
	t := &Reference{n: n, words: w, rng: rng}
	rows := 2*n + 1
	t.x = make([][]uint64, rows)
	t.z = make([][]uint64, rows)
	t.r = make([]uint8, rows)
	for i := range t.x {
		t.x[i] = make([]uint64, w)
		t.z[i] = make([]uint64, w)
	}
	for q := 0; q < n; q++ {
		t.x[q][q/64] |= 1 << uint(q%64)   // destabilizer q = X_q
		t.z[n+q][q/64] |= 1 << uint(q%64) // stabilizer q = Z_q
	}
	return t
}

// NumQubits returns n.
func (t *Reference) NumQubits() int { return t.n }

func (t *Reference) check(q int) {
	if q < 0 || q >= t.n {
		panic(fmt.Sprintf("chp: qubit %d out of range [0,%d)", q, t.n))
	}
}

func (t *Reference) getBit(row []uint64, q int) bool {
	return row[q/64]&(1<<uint(q%64)) != 0
}

func (t *Reference) setBit(row []uint64, q int, v bool) {
	if v {
		row[q/64] |= 1 << uint(q%64)
	} else {
		row[q/64] &^= 1 << uint(q%64)
	}
}

// H applies a Hadamard gate to qubit q.
func (t *Reference) H(q int) {
	t.check(q)
	w, m := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.x[i][w]&m, t.z[i][w]&m
		if xi != 0 && zi != 0 {
			t.r[i] ^= 1
		}
		t.x[i][w] = (t.x[i][w] &^ m) | zi
		t.z[i][w] = (t.z[i][w] &^ m) | xi
	}
}

// S applies the phase gate to qubit q.
func (t *Reference) S(q int) {
	t.check(q)
	w, m := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.x[i][w]&m, t.z[i][w]&m
		if xi != 0 && zi != 0 {
			t.r[i] ^= 1
		}
		t.z[i][w] ^= xi
	}
}

// Sdg applies the inverse phase gate (S³).
func (t *Reference) Sdg(q int) { t.S(q); t.S(q); t.S(q) }

// X applies a Pauli-X gate.
func (t *Reference) X(q int) {
	t.check(q)
	w, m := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if t.z[i][w]&m != 0 {
			t.r[i] ^= 1
		}
	}
}

// Z applies a Pauli-Z gate.
func (t *Reference) Z(q int) {
	t.check(q)
	w, m := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if t.x[i][w]&m != 0 {
			t.r[i] ^= 1
		}
	}
}

// Y applies a Pauli-Y gate.
func (t *Reference) Y(q int) {
	t.check(q)
	w, m := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if (t.x[i][w]&m != 0) != (t.z[i][w]&m != 0) {
			t.r[i] ^= 1
		}
	}
}

// CNOT applies a controlled-NOT with control c and target d.
func (t *Reference) CNOT(c, d int) {
	t.check(c)
	t.check(d)
	if c == d {
		panic("chp: CNOT control equals target")
	}
	cw, cm := c/64, uint64(1)<<uint(c%64)
	dw, dm := d/64, uint64(1)<<uint(d%64)
	for i := 0; i < 2*t.n; i++ {
		xc := t.x[i][cw]&cm != 0
		zc := t.z[i][cw]&cm != 0
		xd := t.x[i][dw]&dm != 0
		zd := t.z[i][dw]&dm != 0
		if xc && zd && (xd == zc) {
			t.r[i] ^= 1
		}
		if xc {
			t.x[i][dw] ^= dm
		}
		if zd {
			t.z[i][cw] ^= cm
		}
	}
}

// CZ applies a controlled-Z gate (H on target, CNOT, H on target).
func (t *Reference) CZ(a, b int) {
	t.H(b)
	t.CNOT(a, b)
	t.H(b)
}

// SWAP exchanges two qubits (three CNOTs).
func (t *Reference) SWAP(a, b int) {
	t.CNOT(a, b)
	t.CNOT(b, a)
	t.CNOT(a, b)
}

// rowsum multiplies row h by row i (h ← h·i), maintaining the sign via
// the Aaronson–Gottesman phase function g, evaluated bit-parallel per
// 64-bit word.
func (t *Reference) rowsum(h, i int) {
	sum := 2*int(t.r[h]) + 2*int(t.r[i])
	for w := 0; w < t.words; w++ {
		x1, z1 := t.x[h][w], t.z[h][w]
		x2, z2 := t.x[i][w], t.z[i][w]
		pos := (x1 & z1 & z2 &^ x2) | (x1 &^ z1 & z2 & x2) | (z1 &^ x1 & x2 &^ z2)
		neg := (x1 & z1 & x2 &^ z2) | (x1 &^ z1 & z2 &^ x2) | (z1 &^ x1 & x2 & z2)
		sum += bits.OnesCount64(pos) - bits.OnesCount64(neg)
		t.x[h][w] = x1 ^ x2
		t.z[h][w] = z1 ^ z2
	}
	sum %= 4
	if sum < 0 {
		sum += 4
	}
	switch sum {
	case 0:
		t.r[h] = 0
	case 2:
		t.r[h] = 1
	default:
		panic("chp: rowsum phase is imaginary; tableau corrupted")
	}
}

// zeroRow clears row h.
func (t *Reference) zeroRow(h int) {
	for w := 0; w < t.words; w++ {
		t.x[h][w] = 0
		t.z[h][w] = 0
	}
	t.r[h] = 0
}

// copyRow copies row src into row dst.
func (t *Reference) copyRow(dst, src int) {
	copy(t.x[dst], t.x[src])
	copy(t.z[dst], t.z[src])
	t.r[dst] = t.r[src]
}

// Measure performs a computational-basis measurement of qubit q.
func (t *Reference) Measure(q int) (outcome int, deterministic bool) {
	t.check(q)
	w, m := q/64, uint64(1)<<uint(q%64)
	p := -1
	for i := t.n; i < 2*t.n; i++ {
		if t.x[i][w]&m != 0 {
			p = i
			break
		}
	}
	if p >= 0 {
		for i := 0; i < 2*t.n; i++ {
			if i != p && i != p-t.n && t.x[i][w]&m != 0 {
				t.rowsum(i, p)
			}
		}
		t.copyRow(p-t.n, p)
		t.zeroRow(p)
		t.setBit(t.z[p], q, true)
		out := 0
		if t.rng.Intn(2) == 1 {
			out = 1
			t.r[p] = 1
		}
		return out, false
	}
	scratch := 2 * t.n
	t.zeroRow(scratch)
	for i := 0; i < t.n; i++ {
		if t.x[i][w]&m != 0 {
			t.rowsum(scratch, i+t.n)
		}
	}
	return int(t.r[scratch]), true
}

// MeasureBit measures and returns only the outcome.
func (t *Reference) MeasureBit(q int) int {
	out, _ := t.Measure(q)
	return out
}

// Reset forces qubit q to |0⟩ by measuring and flipping when necessary.
func (t *Reference) Reset(q int) {
	if out, _ := t.Measure(q); out == 1 {
		t.X(q)
	}
}

// rowToPauliString converts tableau row i into a PauliString.
func (t *Reference) rowToPauliString(i int) pauli.PauliString {
	ops := map[int]pauli.Pauli{}
	for q := 0; q < t.n; q++ {
		xb := t.getBit(t.x[i], q)
		zb := t.getBit(t.z[i], q)
		switch {
		case xb && zb:
			ops[q] = pauli.Y
		case xb:
			ops[q] = pauli.X
		case zb:
			ops[q] = pauli.Z
		}
	}
	return pauli.PauliString{Ops: ops, Negative: t.r[i] == 1}
}

// Stabilizers returns the current stabilizer generators as Pauli strings.
func (t *Reference) Stabilizers() []pauli.PauliString {
	out := make([]pauli.PauliString, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.rowToPauliString(t.n + i)
	}
	return out
}

// canonicalRows returns the canonical stabilizer generators, through the
// same Gaussian elimination the transposed tableau uses.
func (t *Reference) canonicalRows() []packedRow {
	rows := make([]packedRow, t.n)
	for i := 0; i < t.n; i++ {
		rows[i] = packedRow{
			x: append([]uint64(nil), t.x[t.n+i]...),
			z: append([]uint64(nil), t.z[t.n+i]...),
			r: t.r[t.n+i],
		}
	}
	return canonicalize(rows, t.n)
}

// anticommutesWithRow reports whether the packed string anti-commutes
// with tableau row i.
func (t *Reference) anticommutesWithRow(row packedRow, i int) bool {
	parity := 0
	for w := 0; w < t.words; w++ {
		parity ^= bits.OnesCount64(row.x[w]&t.z[i][w]) & 1
		parity ^= bits.OnesCount64(row.z[w]&t.x[i][w]) & 1
	}
	return parity == 1
}

// ExpectPauli mirrors Tableau.ExpectPauli on the row-major layout.
func (t *Reference) ExpectPauli(ps pauli.PauliString) (value int, deterministic bool) {
	row := packedRow{x: make([]uint64, t.words), z: make([]uint64, t.words)}
	if ps.Negative {
		row.r = 1
	}
	// Order-free: per-qubit OR into disjoint bit positions, plus the
	// bounds-check panic guard.
	//qa:allow determinism
	for q, p := range ps.Ops {
		t.check(q)
		if p.HasX() {
			row.x[q/64] |= 1 << uint(q%64)
		}
		if p.HasZ() {
			row.z[q/64] |= 1 << uint(q%64)
		}
	}
	for i := t.n; i < 2*t.n; i++ {
		if t.anticommutesWithRow(row, i) {
			return 0, false
		}
	}
	acc := packedRow{x: make([]uint64, t.words), z: make([]uint64, t.words)}
	for i := 0; i < t.n; i++ {
		if t.anticommutesWithRow(row, i) {
			stab := packedRow{x: t.x[t.n+i], z: t.z[t.n+i], r: t.r[t.n+i]}
			mulRow(&acc, &stab)
		}
	}
	for w := 0; w < t.words; w++ {
		if acc.x[w] != row.x[w] || acc.z[w] != row.z[w] {
			return 0, false
		}
	}
	if acc.r == row.r {
		return 1, true
	}
	return -1, true
}
