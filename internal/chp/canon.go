package chp

import (
	"math/bits"

	"repro/internal/pauli"
)

// packedRow is a standalone qubit-major Pauli row used for
// canonicalization and stabilizer-group membership queries. The tableau
// itself is column-major (row bits scattered across per-qubit planes), so
// rows are gathered into this layout before Gaussian elimination.
type packedRow struct {
	x, z []uint64
	r    uint8
}

func (t *Tableau) packString(ps pauli.PauliString) packedRow {
	row := packedRow{x: make([]uint64, t.qWords), z: make([]uint64, t.qWords)}
	if ps.Negative {
		row.r = 1
	}
	// Order-free: per-qubit OR into disjoint bit positions, plus the
	// bounds-check panic guard.
	//qa:allow determinism
	for q, p := range ps.Ops {
		t.check(q)
		if p.HasX() {
			row.x[q/64] |= 1 << uint(q%64)
		}
		if p.HasZ() {
			row.z[q/64] |= 1 << uint(q%64)
		}
	}
	return row
}

// gatherRow collects tableau row ri from the column planes into a
// freshly allocated qubit-major packedRow.
func (t *Tableau) gatherRow(ri int) packedRow {
	row := packedRow{x: make([]uint64, t.qWords), z: make([]uint64, t.qWords)}
	w, b := ri>>6, uint64(1)<<uint(ri&63)
	rw := t.rowWords
	for q := 0; q < t.n; q++ {
		if t.xz[2*q*rw+w]&b != 0 {
			row.x[q/64] |= 1 << uint(q%64)
		}
		if t.xz[(2*q+1)*rw+w]&b != 0 {
			row.z[q/64] |= 1 << uint(q%64)
		}
	}
	if t.sign[w]&b != 0 {
		row.r = 1
	}
	return row
}

// mulRow multiplies packed row h by packed row i in place (h ← h·i) with
// the same phase bookkeeping as the Aaronson–Gottesman rowsum.
func mulRow(h, i *packedRow) {
	sum := 2*int(h.r) + 2*int(i.r)
	for w := range h.x {
		x1, z1 := h.x[w], h.z[w]
		x2, z2 := i.x[w], i.z[w]
		pos := (x1 & z1 & z2 &^ x2) | (x1 &^ z1 & z2 & x2) | (z1 &^ x1 & x2 &^ z2)
		neg := (x1 & z1 & x2 &^ z2) | (x1 &^ z1 & z2 &^ x2) | (z1 &^ x1 & x2 & z2)
		sum += bits.OnesCount64(pos) - bits.OnesCount64(neg)
		h.x[w] = x1 ^ x2
		h.z[w] = z1 ^ z2
	}
	sum %= 4
	if sum < 0 {
		sum += 4
	}
	switch sum {
	case 0:
		h.r = 0
	case 2:
		h.r = 1
	default:
		panic("chp: imaginary phase in row product")
	}
}

func (r packedRow) getX(q int) bool { return r.x[q/64]&(1<<uint(q%64)) != 0 }
func (r packedRow) getZ(q int) bool { return r.z[q/64]&(1<<uint(q%64)) != 0 }

func (r packedRow) clone() packedRow {
	return packedRow{
		x: append([]uint64(nil), r.x...),
		z: append([]uint64(nil), r.z...),
		r: r.r,
	}
}

func (r packedRow) equal(o packedRow) bool {
	if r.r != o.r {
		return false
	}
	for w := range r.x {
		if r.x[w] != o.x[w] || r.z[w] != o.z[w] {
			return false
		}
	}
	return true
}

// canonicalRows returns the stabilizer generators of the state in the
// canonical (row-reduced echelon) form used for state comparison:
// Gaussian elimination with X-component pivots first, then Z-component
// pivots, phases maintained through mulRow.
func (t *Tableau) canonicalRows() []packedRow {
	rows := make([]packedRow, t.n)
	for i := 0; i < t.n; i++ {
		rows[i] = t.gatherRow(t.n + i)
	}
	return canonicalize(rows, t.n)
}

// canonicalize row-reduces n stabilizer generators in place and returns
// them. Shared by the transposed tableau and the row-major Reference so
// differential tests compare like with like.
func canonicalize(rows []packedRow, n int) []packedRow {
	pivot := 0
	// X block.
	for q := 0; q < n; q++ {
		found := -1
		for i := pivot; i < n; i++ {
			if rows[i].getX(q) {
				found = i
				break
			}
		}
		if found < 0 {
			continue
		}
		rows[pivot], rows[found] = rows[found], rows[pivot]
		for i := 0; i < n; i++ {
			if i != pivot && rows[i].getX(q) {
				mulRow(&rows[i], &rows[pivot])
			}
		}
		pivot++
	}
	// Z block on the remaining rows (which now have no X components).
	for q := 0; q < n; q++ {
		found := -1
		for i := pivot; i < n; i++ {
			if rows[i].getZ(q) && !anyX(rows[i]) {
				found = i
				break
			}
		}
		if found < 0 {
			continue
		}
		rows[pivot], rows[found] = rows[found], rows[pivot]
		for i := 0; i < n; i++ {
			if i != pivot && !anyX(rows[i]) && rows[i].getZ(q) {
				mulRow(&rows[i], &rows[pivot])
			}
		}
		pivot++
	}
	return rows
}

func anyX(r packedRow) bool {
	for _, w := range r.x {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether two tableaux describe the same quantum state
// (identical stabilizer groups including signs). Global phase is not
// physical for stabilizer states, so this is full state equality.
func Equal(a, b *Tableau) bool {
	if a.n != b.n {
		return false
	}
	ra, rb := a.canonicalRows(), b.canonicalRows()
	for i := range ra {
		if !ra[i].equal(rb[i]) {
			return false
		}
	}
	return true
}

// ExpectPauli returns the expectation value of a Pauli string on the
// current state: +1 or −1 when the string is (up to sign) in the
// stabilizer group (deterministic = true), and deterministic = false when
// the string anti-commutes with some stabilizer (expectation zero).
//
// In the column-major layout the whole query is bit-sliced across rows:
// one XOR-accumulated plane carries the anti-commutation parity of every
// row with ps at once, and the selected stabilizer product's sign comes
// from the same per-column phase formula as deterministic measurement.
func (t *Tableau) ExpectPauli(ps pauli.PauliString) (value int, deterministic bool) {
	n, rw := t.n, t.rowWords
	// a[i] = parity of anti-commutations of row i with ps.
	a := t.s0
	for w := 0; w < rw; w++ {
		a[w] = 0
	}
	// Order-free: XOR accumulation into the parity planes commutes.
	//qa:allow determinism
	for q, p := range ps.Ops {
		t.check(q)
		if p.HasX() {
			zc := t.zcol(q)
			for w := 0; w < rw; w++ {
				a[w] ^= zc[w]
			}
		}
		if p.HasZ() {
			xc := t.xcol(q)
			for w := 0; w < rw; w++ {
				a[w] ^= xc[w]
			}
		}
	}
	for w := 0; w < rw; w++ {
		if a[w]&t.stabMask[w] != 0 {
			return 0, false
		}
	}
	// Product of the stabilizers selected by anti-commuting destabilizers.
	md := t.m
	for w := 0; w < rw; w++ {
		md[w] = a[w] & t.destabMask[w]
	}
	ms := t.ms
	shiftPlaneLeft(ms, md, n)
	// The product's operator part must match ps on every column; a
	// mismatch means ps commutes with the group without belonging to it.
	for c := 0; c < n; c++ {
		px, pz := t.productComponent(ms, c)
		op := ps.Ops[c]
		if px != op.HasX() || pz != op.HasZ() {
			return 0, false
		}
	}
	prodNeg := t.productSignExponent(ms)>>1 == 1
	if prodNeg == ps.Negative {
		return 1, true
	}
	return -1, true
}
