package chp

import (
	"math/bits"

	"repro/internal/pauli"
)

// packedRow is a standalone Pauli row used for canonicalization and
// stabilizer-group membership queries.
type packedRow struct {
	x, z []uint64
	r    uint8
}

func (t *Tableau) packString(ps pauli.PauliString) packedRow {
	row := packedRow{x: make([]uint64, t.words), z: make([]uint64, t.words)}
	if ps.Negative {
		row.r = 1
	}
	for q, p := range ps.Ops {
		t.check(q)
		if p.HasX() {
			row.x[q/64] |= 1 << uint(q%64)
		}
		if p.HasZ() {
			row.z[q/64] |= 1 << uint(q%64)
		}
	}
	return row
}

// anticommutesWithRow reports whether the packed row anti-commutes with
// tableau row i.
func (t *Tableau) anticommutesWithRow(row packedRow, i int) bool {
	parity := 0
	for w := 0; w < t.words; w++ {
		parity ^= bits.OnesCount64(row.x[w]&t.z[i][w]) & 1
		parity ^= bits.OnesCount64(row.z[w]&t.x[i][w]) & 1
	}
	return parity == 1
}

// mulRow multiplies packed row h by packed row i in place (h ← h·i) with
// the same phase bookkeeping as Tableau.rowsum.
func mulRow(h, i *packedRow) {
	sum := 2*int(h.r) + 2*int(i.r)
	for w := range h.x {
		x1, z1 := h.x[w], h.z[w]
		x2, z2 := i.x[w], i.z[w]
		pos := (x1 & z1 & z2 &^ x2) | (x1 &^ z1 & z2 & x2) | (z1 &^ x1 & x2 &^ z2)
		neg := (x1 & z1 & x2 &^ z2) | (x1 &^ z1 & z2 &^ x2) | (z1 &^ x1 & x2 & z2)
		sum += bits.OnesCount64(pos) - bits.OnesCount64(neg)
		h.x[w] = x1 ^ x2
		h.z[w] = z1 ^ z2
	}
	sum %= 4
	if sum < 0 {
		sum += 4
	}
	switch sum {
	case 0:
		h.r = 0
	case 2:
		h.r = 1
	default:
		panic("chp: imaginary phase in row product")
	}
}

func (r packedRow) getX(q int) bool { return r.x[q/64]&(1<<uint(q%64)) != 0 }
func (r packedRow) getZ(q int) bool { return r.z[q/64]&(1<<uint(q%64)) != 0 }

func (r packedRow) clone() packedRow {
	return packedRow{
		x: append([]uint64(nil), r.x...),
		z: append([]uint64(nil), r.z...),
		r: r.r,
	}
}

func (r packedRow) equal(o packedRow) bool {
	if r.r != o.r {
		return false
	}
	for w := range r.x {
		if r.x[w] != o.x[w] || r.z[w] != o.z[w] {
			return false
		}
	}
	return true
}

// canonicalRows returns the stabilizer generators of the state in the
// canonical (row-reduced echelon) form used for state comparison:
// Gaussian elimination with X-component pivots first, then Z-component
// pivots, phases maintained through mulRow.
func (t *Tableau) canonicalRows() []packedRow {
	rows := make([]packedRow, t.n)
	for i := 0; i < t.n; i++ {
		rows[i] = packedRow{
			x: append([]uint64(nil), t.x[t.n+i]...),
			z: append([]uint64(nil), t.z[t.n+i]...),
			r: t.r[t.n+i],
		}
	}
	pivot := 0
	// X block.
	for q := 0; q < t.n; q++ {
		found := -1
		for i := pivot; i < t.n; i++ {
			if rows[i].getX(q) {
				found = i
				break
			}
		}
		if found < 0 {
			continue
		}
		rows[pivot], rows[found] = rows[found], rows[pivot]
		for i := 0; i < t.n; i++ {
			if i != pivot && rows[i].getX(q) {
				mulRow(&rows[i], &rows[pivot])
			}
		}
		pivot++
	}
	// Z block on the remaining rows (which now have no X components).
	for q := 0; q < t.n; q++ {
		found := -1
		for i := pivot; i < t.n; i++ {
			if rows[i].getZ(q) && !anyX(rows[i]) {
				found = i
				break
			}
		}
		if found < 0 {
			continue
		}
		rows[pivot], rows[found] = rows[found], rows[pivot]
		for i := 0; i < t.n; i++ {
			if i != pivot && !anyX(rows[i]) && rows[i].getZ(q) {
				mulRow(&rows[i], &rows[pivot])
			}
		}
		pivot++
	}
	return rows
}

func anyX(r packedRow) bool {
	for _, w := range r.x {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether two tableaux describe the same quantum state
// (identical stabilizer groups including signs). Global phase is not
// physical for stabilizer states, so this is full state equality.
func Equal(a, b *Tableau) bool {
	if a.n != b.n {
		return false
	}
	ra, rb := a.canonicalRows(), b.canonicalRows()
	for i := range ra {
		if !ra[i].equal(rb[i]) {
			return false
		}
	}
	return true
}

// ExpectPauli returns the expectation value of a Pauli string on the
// current state: +1 or −1 when the string is (up to sign) in the
// stabilizer group (deterministic = true), and deterministic = false when
// the string anti-commutes with some stabilizer (expectation zero).
func (t *Tableau) ExpectPauli(ps pauli.PauliString) (value int, deterministic bool) {
	row := t.packString(ps)
	for i := t.n; i < 2*t.n; i++ {
		if t.anticommutesWithRow(row, i) {
			return 0, false
		}
	}
	// Accumulate the product of stabilizers selected by anti-commuting
	// destabilizers.
	acc := packedRow{x: make([]uint64, t.words), z: make([]uint64, t.words)}
	for i := 0; i < t.n; i++ {
		if t.anticommutesWithRow(row, i) {
			stab := packedRow{x: t.x[t.n+i], z: t.z[t.n+i], r: t.r[t.n+i]}
			mulRow(&acc, &stab)
		}
	}
	// acc must now equal the operator part of ps.
	for w := 0; w < t.words; w++ {
		if acc.x[w] != row.x[w] || acc.z[w] != row.z[w] {
			// ps is not in the stabilizer group even though it commutes
			// with all generators (possible only for mixed/partial
			// states, which a tableau never represents) — treat as
			// indeterminate.
			return 0, false
		}
	}
	if acc.r == row.r {
		return 1, true
	}
	return -1, true
}
