package chp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

func newT(n int) *Tableau { return New(n, rand.New(rand.NewSource(11))) }

func TestInitialMeasurement(t *testing.T) {
	tb := newT(3)
	for q := 0; q < 3; q++ {
		out, det := tb.Measure(q)
		if out != 0 || !det {
			t.Fatalf("qubit %d of |000>: out=%d det=%v", q, out, det)
		}
	}
}

func TestXThenMeasure(t *testing.T) {
	tb := newT(2)
	tb.X(1)
	if out, det := tb.Measure(1); out != 1 || !det {
		t.Fatalf("X|0> measurement: out=%d det=%v", out, det)
	}
	if out, _ := tb.Measure(0); out != 0 {
		t.Fatal("untouched qubit flipped")
	}
}

func TestHMeasurementIsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ones := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		tb := New(1, rng)
		tb.H(0)
		out, det := tb.Measure(0)
		if det {
			t.Fatal("H|0> measurement should be non-deterministic")
		}
		ones += out
	}
	frac := float64(ones) / trials
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("H|0> bias: %f", frac)
	}
}

func TestMeasurementRepeatable(t *testing.T) {
	tb := newT(1)
	tb.H(0)
	first, _ := tb.Measure(0)
	for i := 0; i < 5; i++ {
		out, det := tb.Measure(0)
		if out != first || !det {
			t.Fatalf("repeat %d: out=%d det=%v, want %d deterministic", i, out, det, first)
		}
	}
}

func TestBellStateCorrelations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		tb := New(2, rng)
		tb.H(0)
		tb.CNOT(0, 1)
		m0, _ := tb.Measure(0)
		m1, det := tb.Measure(1)
		if !det {
			t.Fatal("second Bell measurement should be deterministic")
		}
		if m0 != m1 {
			t.Fatalf("Bell correlation broken: %d vs %d", m0, m1)
		}
	}
}

func TestBellStabilizers(t *testing.T) {
	tb := newT(2)
	tb.H(0)
	tb.CNOT(0, 1)
	// Bell state is stabilized by +XX and +ZZ.
	for _, ps := range []pauli.PauliString{pauli.XString(0, 1), pauli.ZString(0, 1)} {
		v, det := tb.ExpectPauli(ps)
		if !det || v != 1 {
			t.Errorf("⟨%v⟩ = %d det=%v, want +1 deterministic", ps, v, det)
		}
	}
	// Single Z anti-commutes with XX: indeterminate.
	if _, det := tb.ExpectPauli(pauli.ZString(0)); det {
		t.Error("⟨Z0⟩ on Bell state should be indeterminate")
	}
}

func TestPauliGatesFlipSigns(t *testing.T) {
	tb := newT(1)
	tb.X(0) // state |1>: stabilizer -Z
	v, det := tb.ExpectPauli(pauli.ZString(0))
	if !det || v != -1 {
		t.Fatalf("⟨Z⟩ after X = %d det=%v", v, det)
	}
	tb2 := newT(1)
	tb2.H(0) // |+>: stabilizer +X
	v, det = tb2.ExpectPauli(pauli.XString(0))
	if !det || v != 1 {
		t.Fatalf("⟨X⟩ on |+> = %d det=%v", v, det)
	}
	tb2.Z(0) // |->: stabilizer -X
	v, _ = tb2.ExpectPauli(pauli.XString(0))
	if v != -1 {
		t.Fatalf("⟨X⟩ on |-> = %d", v)
	}
	tb3 := newT(1)
	tb3.H(0)
	tb3.S(0) // |+i>: stabilizer +Y
	v, det = tb3.ExpectPauli(pauli.NewPauliString(map[int]pauli.Pauli{0: pauli.Y}))
	if !det || v != 1 {
		t.Fatalf("⟨Y⟩ on S|+> = %d det=%v", v, det)
	}
	tb3.Sdg(0) // back to |+>
	v, _ = tb3.ExpectPauli(pauli.XString(0))
	if v != 1 {
		t.Fatal("Sdg did not invert S")
	}
}

func TestYGate(t *testing.T) {
	tb := newT(1)
	tb.Y(0) // Y|0> = i|1>: stabilizer -Z
	v, det := tb.ExpectPauli(pauli.ZString(0))
	if !det || v != -1 {
		t.Fatalf("⟨Z⟩ after Y = %d det=%v", v, det)
	}
}

func TestCZAndSWAP(t *testing.T) {
	// CZ on |+>|1>: Z kicks back onto qubit 0 → |->|1>.
	tb := newT(2)
	tb.H(0)
	tb.X(1)
	tb.CZ(0, 1)
	v, _ := tb.ExpectPauli(pauli.XString(0))
	if v != -1 {
		t.Fatalf("CZ phase kickback failed: ⟨X0⟩ = %d", v)
	}
	// SWAP moves |1> from qubit 0 to qubit 1.
	tb2 := newT(2)
	tb2.X(0)
	tb2.SWAP(0, 1)
	if out, _ := tb2.Measure(0); out != 0 {
		t.Fatal("SWAP left qubit 0 as 1")
	}
	if out, _ := tb2.Measure(1); out != 1 {
		t.Fatal("SWAP did not move 1 to qubit 1")
	}
}

func TestReset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		tb := New(2, rng)
		tb.H(0)
		tb.CNOT(0, 1)
		tb.Reset(0)
		if out, det := tb.Measure(0); out != 0 || !det {
			t.Fatalf("reset failed: out=%d det=%v", out, det)
		}
	}
}

func TestEqualCanonicalForm(t *testing.T) {
	// Two different Clifford circuits preparing the same Bell state.
	a := newT(2)
	a.H(0)
	a.CNOT(0, 1)
	b := newT(2)
	b.H(1)
	b.CNOT(1, 0)
	if !Equal(a, b) {
		t.Error("equivalent Bell preparations compare unequal")
	}
	c := newT(2)
	c.H(0)
	c.CNOT(0, 1)
	c.Z(0) // |Φ−⟩ differs from |Φ+⟩
	if Equal(a, c) {
		t.Error("different Bell states compare equal")
	}
	d := newT(3)
	if Equal(a, d) {
		t.Error("different qubit counts compare equal")
	}
}

func TestEqualAfterRedundantOps(t *testing.T) {
	a := newT(4)
	b := newT(4)
	ops := func(tb *Tableau) {
		tb.H(0)
		tb.CNOT(0, 2)
		tb.S(2)
		tb.CZ(1, 3)
	}
	ops(a)
	ops(b)
	// b takes a detour that cancels out.
	b.X(1)
	b.X(1)
	b.H(3)
	b.H(3)
	if !Equal(a, b) {
		t.Error("states with cancelled detours compare unequal")
	}
}

func TestGHZState(t *testing.T) {
	tb := newT(5)
	tb.H(0)
	for q := 1; q < 5; q++ {
		tb.CNOT(0, q)
	}
	// GHZ stabilizers: X⊗5 and Z_i Z_{i+1}.
	v, det := tb.ExpectPauli(pauli.XString(0, 1, 2, 3, 4))
	if !det || v != 1 {
		t.Errorf("⟨X⊗5⟩ = %d det=%v", v, det)
	}
	for q := 0; q < 4; q++ {
		v, det := tb.ExpectPauli(pauli.ZString(q, q+1))
		if !det || v != 1 {
			t.Errorf("⟨Z%dZ%d⟩ = %d det=%v", q, q+1, v, det)
		}
	}
	// All measurements agree.
	first, _ := tb.Measure(0)
	for q := 1; q < 5; q++ {
		if out, det := tb.Measure(q); out != first || !det {
			t.Fatalf("GHZ qubit %d: out=%d det=%v want %d", q, out, det, first)
		}
	}
}

func TestStabilizersExtraction(t *testing.T) {
	tb := newT(2)
	tb.H(0)
	tb.CNOT(0, 1)
	stabs := tb.Stabilizers()
	if len(stabs) != 2 {
		t.Fatalf("want 2 stabilizers, got %d", len(stabs))
	}
	for _, s := range stabs {
		if v, det := tb.ExpectPauli(s); !det || v != 1 {
			t.Errorf("extracted stabilizer %v not satisfied", s)
		}
	}
}

func TestManyQubitsAcrossWords(t *testing.T) {
	// 70 qubits exercises multi-word rows.
	rng := rand.New(rand.NewSource(17))
	tb := New(70, rng)
	tb.H(0)
	for q := 1; q < 70; q++ {
		tb.CNOT(q-1, q)
	}
	first, _ := tb.Measure(69)
	for q := 0; q < 69; q++ {
		if out, det := tb.Measure(q); out != first || !det {
			t.Fatalf("70-qubit GHZ qubit %d: out=%d det=%v", q, out, det)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := newT(2)
	a.H(0)
	b := a.Clone()
	b.Z(0) // |+⟩ → |−⟩, distinct state
	if Equal(a, b) {
		t.Error("clone mutation affected original (or Equal is broken)")
	}
}

func TestCNOTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CNOT with equal operands should panic")
		}
	}()
	newT(2).CNOT(1, 1)
}

func TestSC17LogicalStateStabilizers(t *testing.T) {
	// Prepare the SC17 |0⟩_L state directly by measuring the X stabilizers
	// on |0...0⟩ of 9 data qubits with an ancilla (qubit 9) and applying
	// sign fixes, then verify thesis Tables 2.1 and 2.2.
	rng := rand.New(rand.NewSource(23))
	tb := New(10, rng)
	xStabs := [][]int{{0, 1, 3, 4}, {1, 2}, {4, 5, 7, 8}, {6, 7}}
	// Z sign fixes: each single-qubit Z anti-commutes with its target X
	// stabilizer (odd overlap) and commutes with the other three.
	fix := [][]int{{0}, {2}, {8}, {6}}
	for i, sup := range xStabs {
		tb.Reset(9)
		tb.H(9)
		for _, d := range sup {
			tb.CNOT(9, d)
		}
		tb.H(9)
		if out, _ := tb.Measure(9); out == 1 {
			for _, d := range fix[i] {
				tb.Z(d)
			}
		}
	}
	// Table 2.1 stabilizers plus Table 2.2's Z0Z4Z8 for |0⟩_L.
	checks := []pauli.PauliString{
		pauli.XString(0, 1, 3, 4), pauli.XString(1, 2),
		pauli.XString(4, 5, 7, 8), pauli.XString(6, 7),
		pauli.ZString(0, 3), pauli.ZString(1, 2, 4, 5),
		pauli.ZString(3, 4, 6, 7), pauli.ZString(5, 8),
		pauli.ZString(0, 4, 8),
	}
	for _, ps := range checks {
		v, det := tb.ExpectPauli(ps)
		if !det || v != 1 {
			t.Errorf("|0⟩_L should satisfy %v: v=%d det=%v", ps, v, det)
		}
	}
}
