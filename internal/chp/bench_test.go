package chp

import (
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

// entangled returns a tableau scrambled by a fixed random Clifford
// circuit, so stabilizer rows have realistic weight.
func entangled(n int) *Tableau {
	t := New(n, rand.New(rand.NewSource(7)))
	drv := rand.New(rand.NewSource(13))
	for k := 0; k < 6*n; k++ {
		a := drv.Intn(n)
		b := (a + 1 + drv.Intn(n-1)) % n
		switch drv.Intn(3) {
		case 0:
			t.H(a)
		case 1:
			t.S(a)
		case 2:
			t.CNOT(a, b)
		}
	}
	return t
}

// BenchmarkStabilizerInto measures the allocation-free row-extraction
// path (the former rowToPauliString hot spot, which allocated a
// map[int]pauli.Pauli per row).
func BenchmarkStabilizerInto(b *testing.B) {
	t := entangled(17)
	var d pauli.Dense
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.StabilizerInto(i%17, &d)
	}
}

// BenchmarkStabilizers measures full stabilizer-set extraction as used by
// pfverify-style state dumps.
func BenchmarkStabilizers(b *testing.B) {
	t := entangled(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Stabilizers()
	}
}

// BenchmarkCanonicalCompare measures the canonical-form state comparison
// (Gaussian elimination on gathered rows) used by verification tests.
func BenchmarkCanonicalCompare(b *testing.B) {
	t := entangled(17)
	u := t.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Equal(t, u) {
			b.Fatal("states diverged")
		}
	}
}
