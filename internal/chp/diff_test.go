package chp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

// canonString renders a canonical row set for comparison/diagnostics.
func canonString(rows []packedRow, n int) string {
	s := ""
	for _, r := range rows {
		if r.r == 1 {
			s += "-"
		} else {
			s += "+"
		}
		for q := 0; q < n; q++ {
			switch {
			case r.getX(q) && r.getZ(q):
				s += "Y"
			case r.getX(q):
				s += "X"
			case r.getZ(q):
				s += "Z"
			default:
				s += "I"
			}
		}
		s += "\n"
	}
	return s
}

func randomPauliString(rng *rand.Rand, n int) pauli.PauliString {
	ops := map[int]pauli.Pauli{}
	for q := 0; q < n; q++ {
		switch rng.Intn(4) {
		case 1:
			ops[q] = pauli.X
		case 2:
			ops[q] = pauli.Y
		case 3:
			ops[q] = pauli.Z
		}
	}
	return pauli.PauliString{Ops: ops, Negative: rng.Intn(2) == 1}
}

// TestDifferentialFuzz drives identical random Clifford+measure
// sequences through the column-major Tableau and the row-major Reference
// with identically seeded RNGs, asserting bit-identical measurement
// outcomes, determinism flags, ExpectPauli values and canonical
// stabilizer sets. Qubit counts are chosen to cross the 64-row word
// boundary (2n+1 > 64 for n ≥ 32) and the 64-qubit column boundary.
func TestDifferentialFuzz(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17, 31, 32, 33, 40, 64, 70} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for trial := 0; trial < 6; trial++ {
				seed := int64(1000*n + trial)
				// Separate but identically seeded RNGs: both kernels must
				// consume draws in the same order.
				tab := New(n, rand.New(rand.NewSource(seed)))
				ref := NewReference(n, rand.New(rand.NewSource(seed)))
				drv := rand.New(rand.NewSource(seed * 7))
				steps := 400
				if n >= 40 {
					steps = 150
				}
				for step := 0; step < steps; step++ {
					a := drv.Intn(n)
					b := a
					if n > 1 {
						b = (a + 1 + drv.Intn(n-1)) % n
					}
					op := drv.Intn(12)
					switch op {
					case 0:
						tab.H(a)
						ref.H(a)
					case 1:
						tab.S(a)
						ref.S(a)
					case 2:
						tab.Sdg(a)
						ref.Sdg(a)
					case 3:
						tab.X(a)
						ref.X(a)
					case 4:
						tab.Y(a)
						ref.Y(a)
					case 5:
						tab.Z(a)
						ref.Z(a)
					case 6:
						if n > 1 {
							tab.CNOT(a, b)
							ref.CNOT(a, b)
						}
					case 7:
						if n > 1 {
							tab.CZ(a, b)
							ref.CZ(a, b)
						}
					case 8:
						if n > 1 {
							tab.SWAP(a, b)
							ref.SWAP(a, b)
						}
					case 9:
						got, gdet := tab.Measure(a)
						want, wdet := ref.Measure(a)
						if got != want || gdet != wdet {
							t.Fatalf("n=%d trial=%d step=%d: Measure(%d) transposed=(%d,%v) reference=(%d,%v)",
								n, trial, step, a, got, gdet, want, wdet)
						}
					case 10:
						tab.Reset(a)
						ref.Reset(a)
					case 11:
						ps := randomPauliString(drv, n)
						got, gdet := tab.ExpectPauli(ps)
						want, wdet := ref.ExpectPauli(ps)
						if got != want || gdet != wdet {
							t.Fatalf("n=%d trial=%d step=%d: ExpectPauli(%s) transposed=(%d,%v) reference=(%d,%v)",
								n, trial, step, ps, got, gdet, want, wdet)
						}
					}
					if step%97 == 0 || step == steps-1 {
						ct := canonString(tab.canonicalRows(), n)
						cr := canonString(ref.canonicalRows(), n)
						if ct != cr {
							t.Fatalf("n=%d trial=%d step=%d: canonical stabilizers diverged\ntransposed:\n%s\nreference:\n%s",
								n, trial, step, ct, cr)
						}
					}
				}
				// Final full-state checks: canonical sets already compared;
				// also compare the raw stabilizer strings and a Clone.
				st, sr := tab.Stabilizers(), ref.Stabilizers()
				for i := range st {
					if st[i].String() != sr[i].String() {
						t.Fatalf("n=%d trial=%d: stabilizer %d mismatch: %s vs %s",
							n, trial, i, st[i], sr[i])
					}
				}
				if !Equal(tab, tab.Clone()) {
					t.Fatalf("n=%d trial=%d: Clone not Equal to original", n, trial)
				}
			}
		})
	}
}

// TestDifferentialDeterministicMeasure focuses the deterministic branch:
// entangled states where repeated measurement must give a fixed result
// computed without mutation, compared against the Reference.
func TestDifferentialDeterministicMeasure(t *testing.T) {
	for _, n := range []int{2, 17, 33, 70} {
		seed := int64(99 + n)
		tab := New(n, rand.New(rand.NewSource(seed)))
		ref := NewReference(n, rand.New(rand.NewSource(seed)))
		// Build a random graph-state-like circuit, then measure everything
		// twice: the second pass is fully deterministic on both kernels.
		drv := rand.New(rand.NewSource(seed * 3))
		for q := 0; q < n; q++ {
			tab.H(q)
			ref.H(q)
		}
		for k := 0; k < 3*n; k++ {
			a := drv.Intn(n)
			b := (a + 1 + drv.Intn(n-1)) % n
			tab.CZ(a, b)
			ref.CZ(a, b)
		}
		for pass := 0; pass < 2; pass++ {
			for q := 0; q < n; q++ {
				got, gdet := tab.Measure(q)
				want, wdet := ref.Measure(q)
				if got != want || gdet != wdet {
					t.Fatalf("n=%d pass=%d qubit=%d: transposed=(%d,%v) reference=(%d,%v)",
						n, pass, q, got, gdet, want, wdet)
				}
				if pass == 1 && !gdet {
					t.Fatalf("n=%d qubit=%d: second-pass measurement not deterministic", n, q)
				}
			}
		}
	}
}
