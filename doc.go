// Package repro is a from-scratch Go reproduction of "Pauli Frames for
// Quantum Computer Architectures" (Riesebos et al., DAC 2017; MSc thesis
// CE-MS-2016, TU Delft): the Pauli Frame Unit, the QPDO layered
// simulation platform with state-vector and stabilizer back-ends, the
// Surface Code 17 logical qubit with rule-based LUT decoding, and the
// full logical-error-rate evaluation. See README.md for the tour,
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. The root package holds the benchmark
// harness (bench_test.go) that regenerates every evaluation table and
// figure at benchmark scale.
package repro
