// Command compute runs the fault-tolerant computation experiment: the
// execution scheme of thesis Fig 2.6 (QEC windows interleaved with
// logical operations) on two ninja stars, with and without a Pauli
// frame, reporting the per-window logical error rate of an active
// computation rather than an idling qubit.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	per := flag.Float64("per", 1e-3, "physical error rate")
	errors := flag.Int("errors", 15, "logical errors per run")
	maxWindows := flag.Int("maxwindows", 200000, "window cap")
	seed := flag.Int64("seed", 77, "base seed")
	workers := flag.Int("workers", 0, "worker pool size, one run per configuration (0 = all CPUs); results are identical for any value")
	flag.Parse()

	fmt.Printf("two-star computation (windows + CNOT_L cycles) at PER=%g\n\n", *per)
	fmt.Printf("%-12s %-10s %-12s %-14s %-14s\n",
		"config", "windows", "LER", "corr_gates", "slots_saved%")
	without, with, err := experiments.RunComputationLERPair(experiments.ComputationLERConfig{
		PER:              *per,
		MaxLogicalErrors: *errors,
		MaxWindows:       *maxWindows,
		Seed:             *seed,
		Workers:          *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "compute:", err)
		os.Exit(1)
	}
	var lers [2]float64
	for i, r := range []experiments.LERResult{without, with} {
		name := "no frame"
		if i == 1 {
			name = "pauli frame"
		}
		fmt.Printf("%-12s %-10d %-12.3e %-14d %-14.3f\n",
			name, r.Windows, r.LER, r.CorrectionGates, 100*r.SlotsSavedFrac())
		lers[i] = r.LER
	}

	idle, err := experiments.RunLER(experiments.LERConfig{
		PER: *per, MaxLogicalErrors: *errors, MaxWindows: *maxWindows, Seed: *seed + 9,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "compute:", err)
		os.Exit(1)
	}
	fmt.Printf("\nidling single qubit for reference: LER %.3e\n", idle.LER)
	fmt.Printf("computation / idle LER ratio: %.1f (transversal CNOT_L adds error surface)\n",
		lers[0]/idle.LER)
	fmt.Println("the Pauli frame stays LER-neutral during computation, as in the idling study")
}
