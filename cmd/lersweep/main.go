// Command lersweep regenerates the logical-error-rate curves of thesis
// Figs 5.11–5.16: the LER of a Surface Code 17 logical qubit versus the
// physical error rate, with and without a Pauli frame, for logical X and
// Z errors, over the full range or the pseudo-threshold zoom.
//
// Usage:
//
//	lersweep -range full -type x -mode both -samples 3 -errors 20
//	lersweep -range zoom -type z -mode pf -csv out.csv
//	lersweep -store ./sweeps -samples 3   # cache shards; reruns are free
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sweepstore"
)

func main() {
	rng := flag.String("range", "full", "PER range: full (1e-4..1e-2) or zoom (3e-4..5e-4, thesis Figs 5.12/5.14)")
	points := flag.Int("points", 9, "number of log-spaced PER points")
	etype := flag.String("type", "x", "logical error type: x or z")
	mode := flag.String("mode", "both", "configuration: nopf, pf or both")
	samples := flag.Int("samples", 3, "repetitions per PER point (thesis: 10)")
	errors := flag.Int("errors", 20, "logical errors per run before termination (thesis: 50)")
	maxWindows := flag.Int("maxwindows", 400000, "hard cap on windows per run")
	seed := flag.Int64("seed", 2017, "base RNG seed")
	workers := flag.Int("workers", 0, "Monte-Carlo worker pool size (0 = all CPUs); results are identical for any value")
	csvPath := flag.String("csv", "", "also write CSV to this file (suffix _pf/_nopf added in both mode)")
	engineName := flag.String("engine", "stack", "simulation engine: stack (QPDO oracle), framesim (bit-sliced 64-shot Pauli-frame engine) or sparse (gap-skipping frame engine, fastest at low PER)")
	lanes := flag.Int("lanes", 1, "frame-engine batch width in 64-shot words (1, 2, 4 or 8; 64*lanes shots per pass); folded results are identical at every width")
	stopRel := flag.Float64("stoprel", 0, "adaptive early stop: target relative 95% Wilson half-width on each point's LER (0 = run all samples)")
	stopMin := flag.Int("stopmin", 0, "adaptive early stop: minimum samples per point before stopping (0 = default 64)")
	stopBatch := flag.Int("stopbatch", 0, "adaptive early stop: decision granularity in samples (0 = default 256)")
	storeDir := flag.String("store", "", "content-addressed shard store directory: cache results and checkpoint for resume")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Validate every flag combination up front: a bad invocation must
	// exit with a usage error before any sweep work (or profile file)
	// is started, not fail halfway through a multi-sweep run.
	engine, err := experiments.ParseEngine(*engineName)
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "lersweep: "+format+"\n", args...)
		os.Exit(2)
	}
	switch {
	case flag.NArg() > 0:
		fail("unexpected argument %q", flag.Arg(0))
	case err != nil:
		fail("%v", err)
	case *rng != "full" && *rng != "zoom":
		fail("unknown range %q (want full or zoom)", *rng)
	case !strings.EqualFold(*etype, "x") && !strings.EqualFold(*etype, "z"):
		fail("unknown type %q (want x or z)", *etype)
	case *mode != "nopf" && *mode != "pf" && *mode != "both":
		fail("unknown mode %q (want nopf, pf or both)", *mode)
	case *points < 1:
		fail("-points must be >= 1, got %d", *points)
	case *samples < 0:
		fail("-samples must be >= 0, got %d", *samples)
	case *errors < 1:
		fail("-errors must be >= 1, got %d", *errors)
	case *maxWindows < 1:
		fail("-maxwindows must be >= 1, got %d", *maxWindows)
	case *workers < 0:
		fail("-workers must be >= 0, got %d", *workers)
	case *lanes != 1 && *lanes != 2 && *lanes != 4 && *lanes != 8:
		fail("-lanes must be 1, 2, 4 or 8, got %d", *lanes)
	case *lanes > 1 && engine == experiments.EngineStack:
		fail("-lanes needs a frame engine (-engine framesim or sparse)")
	case math.IsNaN(*stopRel) || math.IsInf(*stopRel, 0) || *stopRel < 0:
		fail("-stoprel must be a finite value >= 0, got %v", *stopRel)
	case *stopMin < 0:
		fail("-stopmin must be >= 0, got %d", *stopMin)
	case *stopBatch < 0:
		fail("-stopbatch must be >= 0, got %d", *stopBatch)
	case !(*stopRel > 0) && (*stopMin > 0 || *stopBatch > 0):
		fail("-stopmin/-stopbatch require -stoprel > 0")
	}

	var store *sweepstore.Store
	if *storeDir != "" {
		store, err = sweepstore.Open(*storeDir)
		if err != nil {
			fail("%v", err)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lersweep:", err)
			os.Exit(1)
		}
		//qa:allow errcheck profile file close is best-effort diagnostics
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lersweep:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lersweep:", err)
				return
			}
			//qa:allow errcheck profile file close is best-effort diagnostics
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lersweep:", err)
			}
		}()
	}

	lo, hi := 1e-4, 1e-2
	if *rng == "zoom" {
		lo, hi = 3e-4, 5e-4
	}
	et := experiments.LogicalX
	if strings.EqualFold(*etype, "z") {
		et = experiments.LogicalZ
	}

	cfg := experiments.SweepConfig{
		Engine:           engine,
		PERs:             experiments.LogSpace(lo, hi, *points),
		Samples:          *samples,
		ErrorType:        et,
		MaxLogicalErrors: *errors,
		MaxWindows:       *maxWindows,
		BaseSeed:         *seed,
		Lanes:            *lanes,
		AdaptRelWidth:    *stopRel,
		AdaptMinSamples:  *stopMin,
		AdaptBatch:       *stopBatch,
		Workers:          *workers,
		Progress: func(i int, per float64) {
			fmt.Fprintf(os.Stderr, "  point %d/%d (PER=%.3e) done\n", i+1, *points, per)
		},
	}

	// runSweep dispatches to the cached pipeline when a store is
	// configured; results are bit-identical either way.
	runSweep := func(c experiments.SweepConfig) ([]experiments.PointResult, error) {
		if store == nil {
			return experiments.RunSweep(c)
		}
		pts, err := sweepstore.RunCached(context.Background(), store, c, nil)
		if err == nil {
			st := store.Stats()
			fmt.Fprintf(os.Stderr, "  store: %d shards cached, %d computed\n", st.ShardHits, st.ShardMisses)
		}
		return pts, err
	}

	run := func(withPF bool, label string) []experiments.PointResult {
		c := cfg
		c.WithPauliFrame = withPF
		if withPF {
			c.BaseSeed += 7_777_777
		}
		fmt.Fprintf(os.Stderr, "sweep %s (%d points × %d samples, %s errors)...\n",
			label, *points, *samples, et)
		pts, err := runSweep(c)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lersweep:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.Table(pts, fmt.Sprintf("PER vs LER, logical %s errors, %s", et, label)))
		if th := experiments.PseudoThreshold(pts); !math.IsNaN(th) {
			fmt.Printf("pseudo-threshold (LER = PER crossing): %.3e  [thesis: ≈3.0e-4]\n\n", th)
		} else {
			fmt.Println("pseudo-threshold: no crossing in range")
		}
		if *csvPath != "" {
			path := *csvPath
			if *mode == "both" {
				suffix := "_nopf.csv"
				if withPF {
					suffix = "_pf.csv"
				}
				path = strings.TrimSuffix(path, ".csv") + suffix
			}
			if err := os.WriteFile(path, []byte(experiments.CSV(pts)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "lersweep:", err)
				os.Exit(1)
			}
		}
		return pts
	}

	switch *mode {
	case "nopf":
		run(false, "without Pauli frame (Figs 5.11/5.12)")
	case "pf":
		run(true, "with Pauli frame (Figs 5.13/5.14)")
	case "both":
		without := run(false, "without Pauli frame (Figs 5.11/5.12)")
		with := run(true, "with Pauli frame (Figs 5.13/5.14)")
		fmt.Println("# overlay (Figs 5.15/5.16): PER, LER without PF, LER with PF, delta")
		for i := range without {
			if i >= len(with) {
				break
			}
			fmt.Printf("%-12.4e %-12.4e %-12.4e %+.2e\n",
				without[i].PER, without[i].MeanLER(), with[i].MeanLER(),
				without[i].MeanLER()-with[i].MeanLER())
		}
	}
}
