// Command sweepd is the sweep service daemon and its client.
//
// The serve subcommand runs the internal/sweepserve HTTP/JSON server
// over a content-addressed internal/sweepstore result store: identical
// sub-sweeps are served from cache, every finished shard is
// checkpointed, and a server restarted over the same store resumes
// interrupted sweeps to bit-identical results. The remaining
// subcommands are a small client for scripting against that server.
//
// The worker subcommand runs the other half of the distributed
// fan-out: a shard-compute service that serve (with -peers) delegates
// shard batches to. Workers are stateless by contract — every shard is
// a pure function of its content-addressed config — so a worker set can
// be grown, shrunk, or killed mid-sweep without changing a single
// result bit.
//
// Usage:
//
//	sweepd serve  -store DIR [-addr HOST:PORT] [-workers N] [-store-max-bytes N]
//	              [-peers URL,URL,...] [-dispatch-batch N] [-dispatch-inflight N]
//	              [-dispatch-retries N] [-dispatch-timeout DUR] [-dispatch-backoff DUR]
//	sweepd worker [-addr HOST:PORT] [-workers N] [-store DIR] [-store-max-bytes N]
//	sweepd submit -spec FILE [-addr URL] [-wait] [-poll DUR]
//	sweepd status -id ID [-addr URL]
//	sweepd result -id ID [-addr URL] [-o FILE]
//	sweepd resume -id ID [-addr URL] [-wait] [-poll DUR]
//
// submit reads a bare experiments.Spec JSON object from FILE, wraps it
// with the binary's config-hash version, and posts it; the server
// rejects version mismatches rather than serving stale cache. All
// client subcommands print the server's JSON response to stdout.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweepserve"
	"repro/internal/sweepstore"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "submit", "status", "result", "resume":
		err = cmdClient(cmd, os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sweepd: unknown subcommand %q\n\n", cmd)
		usage()
	}
	if err != nil {
		var ue usageError
		if errors.As(err, &ue) {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sweepd serve  -store DIR [-addr HOST:PORT] [-workers N] [-store-max-bytes N]
                [-peers URL,URL,...] [-dispatch-batch N] [-dispatch-inflight N]
                [-dispatch-retries N] [-dispatch-timeout DUR] [-dispatch-backoff DUR]
  sweepd worker [-addr HOST:PORT] [-workers N] [-store DIR] [-store-max-bytes N]
  sweepd submit -spec FILE [-addr URL] [-wait] [-poll DUR]
  sweepd status -id ID [-addr URL]
  sweepd result -id ID [-addr URL] [-o FILE]
  sweepd resume -id ID [-addr URL] [-wait] [-poll DUR]`)
	os.Exit(2)
}

// usageError marks bad flag combinations: exit 2, before any work runs.
type usageError string

func (e usageError) Error() string { return string(e) }

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8070", "listen address")
	storeDir := fs.String("store", "", "result store directory (required)")
	workers := fs.Int("workers", 0, "worker pool size per sweep (0 = all CPUs); results are identical for any value")
	maxBytes := fs.Int64("store-max-bytes", 0, "shard-cache size bound; LRU GC evicts over it (0 = unlimited)")
	peers := fs.String("peers", "", "comma-separated worker URLs to fan shard compute out to")
	batch := fs.Int("dispatch-batch", sweepserve.DefaultBatchSize, "shards per dispatched batch")
	inflight := fs.Int("dispatch-inflight", sweepserve.DefaultInFlight, "batches in flight per worker")
	retries := fs.Int("dispatch-retries", sweepserve.DefaultRetries, "retries per batch before a worker is marked dead")
	timeout := fs.Duration("dispatch-timeout", sweepserve.DefaultTimeout, "per-batch request timeout")
	backoff := fs.Duration("dispatch-backoff", sweepserve.DefaultBackoff, "first retry delay (doubled per retry)")
	//qa:allow errcheck ExitOnError flag sets never return an error
	fs.Parse(args)
	switch {
	case fs.NArg() > 0:
		return usageError(fmt.Sprintf("serve: unexpected argument %q", fs.Arg(0)))
	case *storeDir == "":
		return usageError("serve: -store is required")
	case *addr == "":
		return usageError("serve: -addr must not be empty")
	case *workers < 0:
		return usageError(fmt.Sprintf("serve: -workers must be >= 0, got %d", *workers))
	case *maxBytes < 0:
		return usageError(fmt.Sprintf("serve: -store-max-bytes must be >= 0, got %d", *maxBytes))
	}
	dispatch, err := dispatchOptions(fs, *peers, *batch, *inflight, *retries, *timeout, *backoff, *workers)
	if err != nil {
		return err
	}

	st, err := sweepstore.Open(*storeDir)
	if err != nil {
		return err
	}
	st.SetMaxBytes(*maxBytes)
	opt := sweepserve.Options{Store: st, Workers: *workers}
	if dispatch != nil {
		if opt.Dispatch, err = sweepserve.NewDispatcher(*dispatch); err != nil {
			return usageError(fmt.Sprintf("serve: %v", err))
		}
	}
	srv, err := sweepserve.New(opt)
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	role := "serving"
	if dispatch != nil {
		role = fmt.Sprintf("serving (dispatching to %d workers)", len(dispatch.Peers))
	}
	fmt.Fprintf(os.Stderr, "sweepd: %s on %s (store %s, version %s)\n",
		role, *addr, *storeDir, sweepstore.Version)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, cancel running jobs (their shards
	// are already checkpointed — resume picks them up), then shut down.
	fmt.Fprintln(os.Stderr, "sweepd: shutting down")
	srv.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	return nil
}

// dispatchOptions validates the serve fan-out flags upfront (exit 2,
// before the store is opened or the listener bound). With no -peers, a
// dispatch tuning flag set on the command line is a contradiction worth
// rejecting rather than ignoring.
func dispatchOptions(fs *flag.FlagSet, peers string, batch, inflight, retries int,
	timeout, backoff time.Duration, workers int) (*sweepserve.DispatchOptions, error) {
	if peers == "" {
		var stray string
		fs.Visit(func(f *flag.Flag) {
			if strings.HasPrefix(f.Name, "dispatch-") && stray == "" {
				stray = f.Name
			}
		})
		if stray != "" {
			return nil, usageError(fmt.Sprintf("serve: -%s requires -peers", stray))
		}
		return nil, nil
	}
	list, err := sweepserve.ParsePeers(peers)
	if err != nil {
		return nil, usageError(fmt.Sprintf("serve: -peers: %v", err))
	}
	opt := sweepserve.DispatchOptions{
		Peers:        list,
		BatchSize:    batch,
		InFlight:     inflight,
		Retries:      retries,
		Timeout:      timeout,
		Backoff:      backoff,
		LocalWorkers: workers,
	}
	if err := opt.Validate(); err != nil {
		return nil, usageError(fmt.Sprintf("serve: %v", err))
	}
	return &opt, nil
}

// cmdWorker runs the shard-compute worker service. -store is optional:
// with one, the worker keeps a local shard cache (shard keys are
// network-portable content addresses, so its hits are valid for any
// coordinator); without one it recomputes every batch.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8071", "listen address")
	storeDir := fs.String("store", "", "optional local shard-cache directory")
	workers := fs.Int("workers", 0, "compute pool size per batch (0 = all CPUs); results are identical for any value")
	maxBytes := fs.Int64("store-max-bytes", 0, "shard-cache size bound; LRU GC evicts over it (0 = unlimited)")
	//qa:allow errcheck ExitOnError flag sets never return an error
	fs.Parse(args)
	switch {
	case fs.NArg() > 0:
		return usageError(fmt.Sprintf("worker: unexpected argument %q", fs.Arg(0)))
	case *addr == "":
		return usageError("worker: -addr must not be empty")
	case *workers < 0:
		return usageError(fmt.Sprintf("worker: -workers must be >= 0, got %d", *workers))
	case *maxBytes < 0:
		return usageError(fmt.Sprintf("worker: -store-max-bytes must be >= 0, got %d", *maxBytes))
	case *storeDir == "" && *maxBytes > 0:
		return usageError("worker: -store-max-bytes requires -store")
	}

	wopt := sweepserve.WorkerOptions{Workers: *workers}
	if *storeDir != "" {
		st, err := sweepstore.Open(*storeDir)
		if err != nil {
			return err
		}
		st.SetMaxBytes(*maxBytes)
		wopt.Store = st
	}
	hs := &http.Server{Addr: *addr, Handler: sweepserve.NewWorker(wopt)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sweepd: worker on %s (version %s)\n", *addr, sweepstore.Version)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// In-flight batches finish within the drain window; the coordinator
	// retries or fails over anything that does not.
	fmt.Fprintln(os.Stderr, "sweepd: worker shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return hs.Shutdown(shutCtx)
}

func cmdClient(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8070", "server base URL")
	var specPath, id, out *string
	var wait *bool
	var poll *time.Duration
	if cmd == "submit" {
		specPath = fs.String("spec", "", "sweep spec JSON file (required)")
	} else {
		id = fs.String("id", "", "sweep job ID (required)")
	}
	if cmd == "result" {
		out = fs.String("o", "", "write the result JSON to this file instead of stdout")
	}
	if cmd == "submit" || cmd == "resume" {
		wait = fs.Bool("wait", false, "poll until the sweep finishes")
		poll = fs.Duration("poll", 250*time.Millisecond, "status poll interval with -wait")
	}
	//qa:allow errcheck ExitOnError flag sets never return an error
	fs.Parse(args)
	switch {
	case fs.NArg() > 0:
		return usageError(fmt.Sprintf("%s: unexpected argument %q", cmd, fs.Arg(0)))
	case !strings.HasPrefix(*addr, "http://") && !strings.HasPrefix(*addr, "https://"):
		return usageError(fmt.Sprintf("%s: -addr must be an http(s) URL, got %q", cmd, *addr))
	case specPath != nil && *specPath == "":
		return usageError("submit: -spec is required")
	case id != nil && *id == "":
		return usageError(fmt.Sprintf("%s: -id is required", cmd))
	case poll != nil && *poll <= 0:
		return usageError(fmt.Sprintf("%s: -poll must be positive, got %v", cmd, *poll))
	}
	base := strings.TrimRight(*addr, "/")

	switch cmd {
	case "submit":
		st, err := submit(base, *specPath)
		if err != nil {
			return err
		}
		if *wait {
			if st, err = waitDone(base, st.ID, *poll); err != nil {
				return err
			}
		}
		return printJSON(st)
	case "status":
		st, err := getStatus(base, *id)
		if err != nil {
			return err
		}
		return printJSON(st)
	case "result":
		return fetchResult(base, *id, *out)
	case "resume":
		st, err := postStatus(base+"/v1/sweeps/"+*id+"/resume", nil)
		if err != nil {
			return err
		}
		if *wait {
			if st, err = waitDone(base, st.ID, *poll); err != nil {
				return err
			}
		}
		return printJSON(st)
	}
	return usageError("unknown subcommand " + cmd)
}

// submit reads a bare spec file, validates it client-side, and posts it
// wrapped with this binary's config-hash version.
func submit(base, specPath string) (sweepserve.StatusResponse, error) {
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return sweepserve.StatusResponse{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var spec experiments.Spec
	if err := dec.Decode(&spec); err != nil {
		return sweepserve.StatusResponse{}, fmt.Errorf("parse %s: %w", specPath, err)
	}
	if err := spec.Normalized().Validate(); err != nil {
		return sweepserve.StatusResponse{}, fmt.Errorf("%s: %w", specPath, err)
	}
	body, err := json.Marshal(sweepserve.SubmitRequest{Version: sweepstore.Version, Spec: spec})
	if err != nil {
		return sweepserve.StatusResponse{}, err
	}
	return postStatus(base+"/v1/sweeps", body)
}

func getStatus(base, id string) (sweepserve.StatusResponse, error) {
	var st sweepserve.StatusResponse
	err := doJSON(http.MethodGet, base+"/v1/sweeps/"+id, nil, &st)
	return st, err
}

func postStatus(url string, body []byte) (sweepserve.StatusResponse, error) {
	var st sweepserve.StatusResponse
	err := doJSON(http.MethodPost, url, body, &st)
	return st, err
}

func waitDone(base, id string, poll time.Duration) (sweepserve.StatusResponse, error) {
	for {
		st, err := getStatus(base, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case "done":
			return st, nil
		case "failed":
			return st, fmt.Errorf("sweep %s failed: %s", id, st.Error)
		case "stored":
			return st, fmt.Errorf("sweep %s is checkpointed but not running; resume it", id)
		}
		time.Sleep(poll)
	}
}

// fetchResult streams the result bytes verbatim to out (or stdout), so
// byte-level comparisons between runs see exactly what the server sent.
func fetchResult(base, id, out string) error {
	resp, err := http.Get(base + "/v1/sweeps/" + id + "/result")
	if err != nil {
		return err
	}
	//qa:allow errcheck response body close after full read, nothing to recover
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return serverError(resp.StatusCode, raw)
	}
	if out == "" {
		_, err := os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(out, raw, 0o644)
}

func doJSON(method, url string, body []byte, into any) error {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	//qa:allow errcheck response body close after full read, nothing to recover
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return serverError(resp.StatusCode, raw)
	}
	return json.Unmarshal(raw, into)
}

func serverError(code int, raw []byte) error {
	var er sweepserve.ErrorResponse
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", er.Error, code)
	}
	return fmt.Errorf("server: HTTP %d: %s", code, bytes.TrimSpace(raw))
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
