// Command qpdo is the platform driver: it reads a QASM program (thesis
// §4.1.1 format) and executes it on a configurable QPDO control stack —
// state-vector or stabilizer core, optional Pauli frame layer, optional
// depolarizing error layer — then reports the measurement results and,
// when supported, the final quantum state.
//
// Usage:
//
//	qpdo -core qx -pf -state program.qasm
//	echo 'h q0
//	cnot q0,q1
//	{ measure q0 | measure q1 }' | qpdo -core chp -shots 10
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"repro/internal/layers"
	"repro/internal/qasm"
	"repro/internal/qpdo"
	"repro/internal/testbench"
)

func main() {
	coreKind := flag.String("core", "qx", "simulation core: qx (state vector) or chp (stabilizer)")
	usePF := flag.Bool("pf", false, "insert a Pauli frame layer")
	per := flag.Float64("per", 0, "physical error rate for a depolarizing error layer (0 = none)")
	shots := flag.Int("shots", 1, "number of executions")
	seed := flag.Int64("seed", 42, "RNG seed")
	showState := flag.Bool("state", false, "print the final quantum state (qx core flushes the frame first)")
	tb := flag.String("tb", "", "run a ready-made test bench instead of a program: bell or gates (thesis §4.2.4)")
	flag.Parse()

	if *tb != "" {
		runBench(*tb, *coreKind, *usePF, *shots, *seed)
		return
	}

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	check(err)
	prog, err := qasm.Parse(string(src))
	check(err)
	fmt.Printf("parsed %d qubits, %d time slots, %d operations\n",
		prog.Qubits, prog.Circuit.NumSlots(), prog.Circuit.NumOps())

	counts := map[string]int{}
	for shot := 0; shot < *shots; shot++ {
		rng := rand.New(rand.NewSource(*seed + int64(shot)))
		var stack qpdo.Core
		var pf *layers.PauliFrameLayer
		switch *coreKind {
		case "qx":
			stack = layers.NewQxCore(rng)
		case "chp":
			stack = layers.NewChpCore(rng)
		default:
			check(fmt.Errorf("unknown core %q", *coreKind))
		}
		if *per > 0 {
			stack = layers.NewErrorLayer(stack, *per, rand.New(rand.NewSource(*seed+int64(1000+shot))))
		}
		if *usePF {
			pf = layers.NewPauliFrameLayer(stack)
			stack = pf
		}
		check(stack.CreateQubits(prog.Qubits))
		res, err := qpdo.Run(stack, prog.Circuit.Clone())
		check(err)

		key := ""
		for _, m := range res.Measurements {
			key += fmt.Sprintf("q%d=%d ", m.Qubit, m.Value)
		}
		if key == "" {
			key = "(no measurements)"
		}
		counts[key]++

		if *showState && shot == 0 {
			if pf != nil {
				check(pf.Flush())
			}
			qs, err := stack.GetQuantumState()
			check(err)
			fmt.Println("final quantum state:")
			fmt.Print(qs.Describe())
		}
	}

	fmt.Printf("\nmeasurement histogram over %d shot(s):\n", *shots)
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %4d  %s\n", counts[k], k)
	}
}

// runBench executes one of the thesis' ready-to-use test benches against
// the configured stack.
func runBench(kind, coreKind string, usePF bool, shots int, seed int64) {
	factory := func(it int) (qpdo.Core, error) {
		rng := rand.New(rand.NewSource(seed + int64(it)))
		var stack qpdo.Core
		switch coreKind {
		case "qx":
			stack = layers.NewQxCore(rng)
		case "chp":
			stack = layers.NewChpCore(rng)
		default:
			return nil, fmt.Errorf("unknown core %q", coreKind)
		}
		if usePF {
			stack = layers.NewPauliFrameLayer(stack)
		}
		return stack, nil
	}
	var bench testbench.Bench
	switch kind {
	case "bell":
		bench = testbench.NewBellStateHisto()
	case "gates":
		bench = testbench.NewGateSupport()
		shots = 1
	default:
		check(fmt.Errorf("unknown test bench %q", kind))
	}
	check(testbench.Run(bench, factory, shots))
	fmt.Print(bench.Report())
	if !bench.Passed() {
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpdo:", err)
		os.Exit(1)
	}
}
