// Command pfverify reproduces the Pauli-frame verification experiments of
// thesis §5.2: random Clifford+T circuits executed with and without a
// Pauli frame layer must yield the same final quantum state up to global
// phase (Listings 5.3–5.6), and the odd-Bell-state workload on two ninja
// stars must yield the same measurement histogram (Fig 5.7).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/randcirc"
	"repro/internal/statevec"
	"repro/internal/surface"
)

func main() {
	iters := flag.Int("iters", 100, "random-circuit iterations (thesis: 100)")
	qubits := flag.Int("qubits", 10, "random-circuit register width (thesis: 10)")
	ngates := flag.Int("gates", 1000, "gates per random circuit (thesis: 1000)")
	bell := flag.Bool("bell", false, "run the odd-Bell-state histogram experiment instead (Fig 5.7)")
	bellIters := flag.Int("belliters", 100, "odd-Bell iterations (thesis: 100)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", 1, "state-vector kernel goroutines (0 = all CPUs); results are identical for any value")
	verbose := flag.Bool("v", false, "print the example states of the first iteration (Listings 5.3-5.6)")
	flag.Parse()

	if *bell {
		runOddBell(*bellIters, *seed, *workers)
		return
	}
	runRandomCircuits(*iters, *qubits, *ngates, *seed, *workers, *verbose)
}

func runRandomCircuits(iters, qubits, ngates int, seed int64, workers int, verbose bool) {
	fmt.Printf("random-circuit Pauli frame verification: %d iterations, %d qubits, %d gates each\n",
		iters, qubits, ngates)
	for it := 0; it < iters; it++ {
		s := seed + int64(it)
		circ := randcirc.Generate(randcirc.Config{
			Qubits: qubits, Gates: ngates, IncludeIdentity: true,
		}, rand.New(rand.NewSource(s)))

		ref := layers.NewQxCore(rand.New(rand.NewSource(s * 31)))
		ref.SetWorkers(workers)
		check(ref.CreateQubits(qubits))
		_, err := qpdo.Run(ref, circ.Clone())
		check(err)

		qx := layers.NewQxCore(rand.New(rand.NewSource(s * 31)))
		qx.SetWorkers(workers)
		pf := layers.NewPauliFrameLayer(qx)
		check(pf.CreateQubits(qubits))
		_, err = qpdo.Run(pf, circ.Clone())
		check(err)

		if verbose && it == 0 {
			fmt.Println("\n--- reference state (no Pauli frame), cf. Listing 5.3:")
			fmt.Print(ref.Vector().SupportString(1e-9))
			fmt.Println("--- state with Pauli frame before flushing, cf. Listing 5.4:")
			fmt.Print(qx.Vector().SupportString(1e-9))
			fmt.Println("--- Pauli frame status, cf. Listing 5.5:")
			fmt.Print(pf.PFU.Frame.String())
		}

		check(pf.Flush())

		if verbose && it == 0 {
			fmt.Println("--- state with Pauli frame after flushing, cf. Listing 5.6:")
			fmt.Print(qx.Vector().SupportString(1e-9))
			fmt.Println()
		}

		ok, phase := statevec.EqualUpToGlobalPhase(ref.Vector(), qx.Vector(), 1e-9)
		if !ok {
			fmt.Printf("iteration %d: STATES DIFFER — Pauli frame mechanism broken\n", it)
			os.Exit(1)
		}
		if verbose && it == 0 {
			fmt.Printf("states equal up to global phase %v\n\n", phase)
		}
	}
	fmt.Printf("PASS: all %d random circuits yield identical states up to global phase\n", iters)
}

func runOddBell(iters int, seed int64, workers int) {
	fmt.Printf("odd Bell state (|01⟩_L+|10⟩_L)/√2 on two ninja stars, %d iterations\n", iters)
	for _, withPF := range []bool{true, false} {
		hist := map[string]int{}
		for it := 0; it < iters; it++ {
			qx := layers.NewQxCore(rand.New(rand.NewSource(seed + int64(it))))
			qx.SetWorkers(workers)
			var below qpdo.Core = qx
			var pf *layers.PauliFrameLayer
			if withPF {
				pf = layers.NewPauliFrameLayer(qx)
				below = pf
			}
			star := surface.NewNinjaStarLayer(below, surface.Config{Ancilla: surface.AncillaSharedSingle})
			check(star.CreateQubits(2))
			c := circuit.New().
				Add(gates.Prep, 0).Add(gates.Prep, 1).
				Add(gates.H, 0).
				Add(gates.CNOT, 0, 1).
				Add(gates.X, 0).
				Add(gates.Measure, 0).Add(gates.Measure, 1)
			res, err := qpdo.Run(star, c)
			check(err)
			hist[fmt.Sprintf("|%d%d>", res.Last(0), res.Last(1))]++
		}
		label := "without"
		if withPF {
			label = "with"
		}
		fmt.Printf("\nhistogram %s Pauli frame (cf. Fig 5.7):\n", label)
		for _, state := range []string{"|00>", "|01>", "|10>", "|11>"} {
			fmt.Printf("  %s  %3d  %s\n", state, hist[state], bar(hist[state]))
		}
		if hist["|00>"]+hist["|11>"] != 0 {
			fmt.Println("FAIL: correlated outcomes observed for the odd Bell state")
			os.Exit(1)
		}
	}
	fmt.Println("\nPASS: only anti-correlated outcomes, matching the expected odd Bell statistics")
}

func bar(n int) string {
	out := make([]byte, n/2)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfverify:", err)
		os.Exit(1)
	}
}
