// Command archsim runs an assembled QISA program (thesis §3.5.1 format)
// on the functional quantum-control-unit model: instruction decode,
// Q-symbol-table address translation, Pauli arbiter + Pauli Frame Unit
// routing, QEC cycle generation with QED decoding, and a mock physical
// execution layer over a simulated chip.
//
// Usage:
//
//	archsim [-chip chp|qx] [-trace] program.qisa
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/arch"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

func main() {
	chipKind := flag.String("chip", "chp", "simulated chip back-end: chp or qx")
	qubits := flag.Int("qubits", surface.NumQubits, "physical qubits on the chip (≥17)")
	seed := flag.Int64("seed", 1, "RNG seed")
	trace := flag.Bool("trace", false, "dump the PEL waveform trace")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	check(err)
	prog, err := arch.Assemble(string(src))
	check(err)

	var chip qpdo.Core
	switch *chipKind {
	case "chp":
		chip = layers.NewChpCore(rand.New(rand.NewSource(*seed)))
	case "qx":
		chip = layers.NewQxCore(rand.New(rand.NewSource(*seed)))
	default:
		check(fmt.Errorf("unknown chip %q", *chipKind))
	}
	check(chip.CreateQubits(*qubits))
	qcu, err := arch.NewQCU(chip)
	check(err)

	rep, err := qcu.Execute(prog)
	check(err)

	fmt.Printf("instructions:       %d\n", len(prog))
	fmt.Printf("QEC cycles:         %d\n", rep.ESMRounds)
	fmt.Printf("QED corrections:    %d (absorbed by the PFU)\n", rep.Corrections)
	fmt.Printf("measurements:       %v\n", rep.Measurements)
	st := qcu.PFU().Stats
	fmt.Printf("arbiter: %d Pauli absorbed, %d Clifford mapped, %d flush gates, %d results inverted\n",
		st.PauliAbsorbed, st.CliffordMapped, st.FlushGates, st.MeasurementsFlipped)
	fmt.Printf("PEL waveforms:      %d\n", len(qcu.PEL().Trace))
	if *trace {
		for i, e := range qcu.PEL().Trace {
			fmt.Printf("  %5d %s %v\n", i, e.Gate, e.Qubits)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "archsim:", err)
		os.Exit(1)
	}
}
