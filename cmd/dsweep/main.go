// Command dsweep runs the distance-scaling experiment the thesis lists
// as future work (Chapter 6): logical error rates and Pauli-frame
// savings for surface codes of distance 3, 5, ... using the generic
// lattice and the matching decoder, empirically confirming the Eq. 5.12
// prediction (Fig 5.27) that the frame's ceiling shrinks with distance.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	distances := flag.String("d", "3,5", "comma-separated odd distances")
	per := flag.Float64("per", 5e-4, "physical error rate")
	errors := flag.Int("errors", 10, "logical errors per run")
	maxWindows := flag.Int("maxwindows", 400000, "window cap")
	pf := flag.Bool("pf", true, "include the Pauli frame (for the savings columns)")
	seed := flag.Int64("seed", 33, "base seed")
	workers := flag.Int("workers", 0, "worker pool size, one run per distance (0 = all CPUs); results are identical for any value")
	flag.Parse()

	// Validate every flag up front: a bad invocation exits with a usage
	// error before any simulation starts, never after a partial run.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dsweep: "+format+"\n", args...)
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fail("unexpected argument %q", flag.Arg(0))
	}
	var ds []int
	for _, tok := range strings.Split(*distances, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fail("%v", err)
		}
		if d < 3 || d%2 == 0 {
			fail("-d distances must be odd and >= 3, got %d", d)
		}
		ds = append(ds, d)
	}
	switch {
	case len(ds) == 0:
		fail("-d must list at least one distance")
	case *per <= 0 || *per > 1 || math.IsNaN(*per):
		fail("-per must be in (0, 1], got %g", *per)
	case *errors < 1:
		fail("-errors must be >= 1, got %d", *errors)
	case *maxWindows < 1:
		fail("-maxwindows must be >= 1, got %d", *maxWindows)
	case *workers < 0:
		fail("-workers must be >= 0, got %d", *workers)
	}

	fmt.Printf("distance scaling at PER=%g (windows are (d−1) ESM rounds long)\n\n", *per)
	results, err := experiments.RunGenericLERSweep(experiments.GenericLERConfig{
		PER:              *per,
		WithPauliFrame:   *pf,
		MaxLogicalErrors: *errors,
		MaxWindows:       *maxWindows,
		Seed:             *seed,
		Workers:          *workers,
	}, ds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsweep:", err)
		os.Exit(1)
	}
	fmt.Printf("%-4s %-10s %-12s %-14s %-14s %-12s %-12s\n",
		"d", "windows", "LER", "LER/round", "slots_saved%", "bound_%", "gates_saved%")
	for i, d := range ds {
		r := results[i]
		bound := experiments.UpperBoundRelativeImprovement(d, 8)
		fmt.Printf("%-4d %-10d %-12.3e %-14.3e %-14.4f %-12.4f %-12.4f\n",
			d, r.Windows, r.LER, r.LER/float64(d-1),
			100*r.SlotsSavedFrac(), 100*bound, 100*r.GatesSavedFrac())
	}
	fmt.Println("\nthe slots-saved ceiling follows Eq. 5.12: 1/((d−1)·8+1) — the Pauli frame's")
	fmt.Println("possible LER benefit vanishes with distance, while the LER itself improves.")
}
