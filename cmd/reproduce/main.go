// Command reproduce runs the complete evaluation of the paper at a
// configurable scale and writes a single markdown report: functional
// verification (listings and truth tables), the LER study with and
// without a Pauli frame, the statistics series, the savings counters,
// the analytic bound, and the distance-scaling extension.
//
//	reproduce -scale quick -o report.md      # minutes
//	reproduce -scale thesis -o report.md     # hours, thesis-sized runs
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/experiments"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/randcirc"
	"repro/internal/statevec"
	"repro/internal/surface"
)

type scale struct {
	points, samples, errors, maxWindows, randIters int
}

var scales = map[string]scale{
	"smoke":  {points: 3, samples: 2, errors: 5, maxWindows: 30000, randIters: 5},
	"quick":  {points: 7, samples: 3, errors: 15, maxWindows: 250000, randIters: 25},
	"thesis": {points: 25, samples: 10, errors: 50, maxWindows: 2000000, randIters: 100},
}

func main() {
	scaleName := flag.String("scale", "quick", "smoke, quick or thesis")
	out := flag.String("o", "", "write the markdown report here (default stdout)")
	seed := flag.Int64("seed", 2017, "base seed")
	workers := flag.Int("workers", 0, "Monte-Carlo worker pool size and state-vector kernel goroutines (0 = all CPUs); results are identical for any value")
	engineName := flag.String("engine", "stack", "LER-study engine: stack (QPDO oracle), framesim (bit-sliced, ~80x faster) or sparse (gap-skipping, fastest at low PER)")
	lanes := flag.Int("lanes", 1, "frame-engine batch width in 64-shot words (1, 2, 4 or 8); identical results at every width")
	flag.Parse()
	sc, ok := scales[*scaleName]
	if !ok {
		fmt.Fprintf(os.Stderr, "reproduce: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	engine, err := experiments.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(2)
	}
	if *lanes != 1 && *lanes != 2 && *lanes != 4 && *lanes != 8 {
		fmt.Fprintf(os.Stderr, "reproduce: -lanes must be 1, 2, 4 or 8, got %d\n", *lanes)
		os.Exit(2)
	}
	if *lanes > 1 && engine == experiments.EngineStack {
		fmt.Fprintln(os.Stderr, "reproduce: -lanes needs a frame engine (-engine framesim or sparse)")
		os.Exit(2)
	}

	var b strings.Builder
	start := time.Now()
	fmt.Fprintf(&b, "# Reproduction report (scale %s, seed %d, LER engine %s)\n\n", *scaleName, *seed, engine)

	// 1. Pauli frame equivalence on random circuits (§5.2.2).
	status("random-circuit equivalence")
	pass := 0
	for it := 0; it < sc.randIters; it++ {
		s := *seed + int64(it)
		circ := randcirc.Generate(randcirc.Config{Qubits: 8, Gates: 400, IncludeIdentity: true},
			rand.New(rand.NewSource(s)))
		ref := layers.NewQxCore(rand.New(rand.NewSource(s * 31)))
		ref.SetWorkers(*workers)
		must(ref.CreateQubits(8))
		_, err := qpdo.Run(ref, circ.Clone())
		must(err)
		qx := layers.NewQxCore(rand.New(rand.NewSource(s * 31)))
		qx.SetWorkers(*workers)
		pf := layers.NewPauliFrameLayer(qx)
		must(pf.CreateQubits(8))
		_, err = qpdo.Run(pf, circ.Clone())
		must(err)
		must(pf.Flush())
		if ok, _ := statevec.EqualUpToGlobalPhase(ref.Vector(), qx.Vector(), 1e-9); ok {
			pass++
		}
	}
	fmt.Fprintf(&b, "## Pauli frame equivalence (thesis §5.2.2)\n\n")
	fmt.Fprintf(&b, "%d/%d random Clifford+T circuits (8 qubits × 400 gates) identical up to global phase after flushing.\n\n",
		pass, sc.randIters)

	// 2. Logical operations (§5.1).
	status("logical operations")
	fmt.Fprintf(&b, "## SC17 logical operations (thesis §5.1)\n\n| check | result |\n|---|---|\n")
	cnotOK := true
	for i, cse := range []struct{ c, t, wc, wt int }{{0, 0, 0, 0}, {1, 0, 1, 1}, {0, 1, 0, 1}, {1, 1, 1, 0}} {
		qx := layers.NewQxCore(rand.New(rand.NewSource(*seed + int64(100+i))))
		qx.SetWorkers(*workers)
		l := surface.NewNinjaStarLayer(qx, surface.Config{Ancilla: surface.AncillaSharedSingle})
		must(l.CreateQubits(2))
		prep := circuit.New().Add(gates.Prep, 0).Add(gates.Prep, 1)
		if cse.c == 1 {
			prep.Add(gates.X, 0)
		}
		if cse.t == 1 {
			prep.Add(gates.X, 1)
		}
		prep.Add(gates.CNOT, 0, 1).Add(gates.Measure, 0).Add(gates.Measure, 1)
		res, err := qpdo.Run(l, prep)
		must(err)
		if res.Last(0) != cse.wc || res.Last(1) != cse.wt {
			cnotOK = false
		}
	}
	fmt.Fprintf(&b, "| CNOT_L truth table (Table 5.5) | %s |\n", okStr(cnotOK))
	fmt.Fprintf(&b, "| ESM structure 8 slots / 48 ops (Table 5.8) | %s |\n\n", okStr(esmOK()))

	// 3. LER study.
	status("LER sweeps (this is the long part)")
	pair, err := experiments.RunPairedSweeps(experiments.SweepConfig{
		Engine:           engine,
		PERs:             experiments.LogSpace(1e-4, 1e-2, sc.points),
		Samples:          sc.samples,
		MaxLogicalErrors: sc.errors,
		MaxWindows:       sc.maxWindows,
		BaseSeed:         *seed,
		Lanes:            *lanes,
		Workers:          *workers,
		Progress: func(i int, per float64) {
			fmt.Fprintf(os.Stderr, "  LER point %d/%d (PER=%.2e)\n", i+1, sc.points, per)
		},
	})
	must(err)
	fmt.Fprintf(&b, "## LER study (thesis §5.3, Figs 5.11-5.16)\n\n")
	fmt.Fprintf(&b, "```\n%s\n%s```\n", experiments.Table(pair.Without, "without Pauli frame"),
		experiments.Table(pair.With, "with Pauli frame"))
	fmt.Fprintf(&b, "pseudo-threshold: %.2e without PF, %.2e with PF (thesis ≈3.0e-4)\n\n",
		experiments.PseudoThreshold(pair.Without), experiments.PseudoThreshold(pair.With))

	ts, err := pair.TTestSeries()
	must(err)
	fmt.Fprintf(&b, "## Statistics (Figs 5.17-5.24)\n\n")
	within := 0
	diffs := pair.DiffSeries()
	for _, d := range diffs {
		if d.Delta <= d.SigmaMax && d.Delta >= -d.SigmaMax {
			within++
		}
	}
	fmt.Fprintf(&b, "- δPL within ±σmax at %d/%d points\n", within, len(diffs))
	fmt.Fprintf(&b, "- mean independent t-test ρ = %.3f (null expectation ≈0.5)\n", experiments.MeanP(ts))
	fmt.Fprintf(&b, "- consistently significant PF effect: %v (thesis: none)\n\n", experiments.Significant(ts))

	fmt.Fprintf(&b, "## Savings and bound (Figs 5.25-5.27)\n\n")
	last := pair.With[len(pair.With)-1]
	fmt.Fprintf(&b, "- at PER %.0e the frame saved %.2f%% of gates and %.2f%% of slots (ceiling 5.9%%)\n",
		last.PER, 100*meanOf(last.GatesSaved), 100*meanOf(last.SlotsSaved))
	fmt.Fprintf(&b, "- Eq. 5.12 bound: d=3 %.2f%%, d=5 %.2f%%, d=11 %.2f%%\n\n",
		100*experiments.UpperBoundRelativeImprovement(3, 8),
		100*experiments.UpperBoundRelativeImprovement(5, 8),
		100*experiments.UpperBoundRelativeImprovement(11, 8))

	verdict := "REPRODUCED: the Pauli frame leaves the LER statistically unchanged while saving gates/slots."
	if experiments.Significant(ts) {
		verdict = "DEVIATION: a consistent Pauli-frame LER effect was measured — contradicts the paper."
	}
	fmt.Fprintf(&b, "## Verdict\n\n%s\n\nTotal runtime: %s\n", verdict, time.Since(start).Round(time.Second))

	if *out == "" {
		fmt.Print(b.String())
		return
	}
	must(os.WriteFile(*out, []byte(b.String()), 0o644))
	fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
}

func esmOK() bool {
	st := &surface.Star{Mode: surface.AncillaDedicated}
	for i := 0; i < surface.NumData; i++ {
		st.Data[i] = i
	}
	for i := 0; i < surface.NumAncilla; i++ {
		st.Anc[i] = surface.NumData + i
	}
	c := st.ESMCircuit()
	return c.NumSlots() == 8 && c.NumOps() == 48 && c.Validate() == nil
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func okStr(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAILED"
}

func status(msg string) { fmt.Fprintln(os.Stderr, "reproduce:", msg) }

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}
