// Command qalint is the repo's static analyzer: it enforces the
// invariants the headline claims depend on — deterministic sharded
// sweeps, exhaustive gate/Pauli enum switches, allocation-free
// //qa:hotpath kernels (interprocedurally, through the module call
// graph), configuration-derived RNG seeds, checked error returns and
// scheduling-independent worker-pool closures, plus tolerance-based
// float comparison — over every package of the module. See
// internal/lint for the checks and the //qa: annotation grammar.
//
// Usage:
//
//	qalint [-checks determinism,errcheck,…] [-json] [-baseline file] [-list] [./...]
//
// -json emits one machine-readable finding per line (JSON Lines:
// check/file/line/col/message, file paths module-root-relative) for CI
// artifacts and annotators. -baseline replays a previous -json capture
// as a suppression list — matching on (check, file, message), line
// numbers ignored — so a new check can land strictly against known
// findings; anything not baselined still fails.
//
// The only supported pattern is the whole module (./..., the default):
// the checks are cross-package invariants, so partial runs would give a
// false sense of green. Exits 1 when findings are reported, 2 on
// loader/usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the registered checks and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON Lines (one object per finding)")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in this JSON Lines file (as produced by -json)")
	dir := flag.String("dir", ".", "directory inside the module to analyze")
	flag.Usage = func() {
		//qa:allow errcheck usage text to stderr, nothing to do on failure
		fmt.Fprintf(flag.CommandLine.Output(), "usage: qalint [flags] [./...]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "qalint: unsupported pattern %q (the checks are module-wide; use ./...)\n", arg)
			os.Exit(2)
		}
	}

	cfg := lint.Default()
	if *checks != "" {
		cfg.Enabled = strings.Split(*checks, ",")
		known := map[string]bool{"qa": true}
		for _, c := range lint.Checks() {
			known[c.Name] = true
		}
		for _, name := range cfg.Enabled {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "qalint: unknown check %q (see qalint -list)\n", name)
				os.Exit(2)
			}
		}
	}

	var baseline *lint.Baseline
	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qalint:", err)
			os.Exit(2)
		}
		baseline = b
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qalint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "qalint:", err)
		os.Exit(2)
	}
	diags := lint.Run(cfg, pkgs)
	diags = baseline.Filter(diags, loader.ModuleRoot)
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags, loader.ModuleRoot); err != nil {
			fmt.Fprintln(os.Stderr, "qalint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qalint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
