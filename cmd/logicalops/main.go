// Command logicalops reproduces the ninja-star logical-operation
// verification of thesis §5.1: initialization to |0⟩_L (Listing 5.1),
// the |1⟩_L state (Listing 5.2), the logical Hadamard behaviour, and the
// CNOT_L / CZ_L truth tables (Tables 5.5 and 5.6).
package main

import (
	"flag"
	"fmt"
	"math/cmplx"
	"math/rand"
	"os"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

func main() {
	seed := flag.Int64("seed", 7, "RNG seed")
	flag.Parse()

	fmt.Println("=== |0⟩_L after initialization (thesis Listing 5.1) ===")
	l, qx := oneStar(*seed)
	check(runCirc(l, circuit.New().Add(gates.Prep, 0)))
	printDataState(l, qx)

	fmt.Println("\n=== |1⟩_L = X_L |0⟩_L (thesis Listing 5.2) ===")
	check(runCirc(l, circuit.New().Add(gates.X, 0)))
	printDataState(l, qx)

	fmt.Println("\n=== logical Hadamard (thesis §5.1.4) ===")
	l2, _ := oneStar(*seed + 1)
	check(runCirc(l2, circuit.New().Add(gates.Prep, 0).Add(gates.H, 0)))
	out, err := l2.ProbeXL(0)
	check(err)
	fmt.Printf("X_L probe on H_L|0⟩_L: %+d  (want +1: the state is |+⟩_L)\n", 1-2*out)
	fmt.Printf("lattice rotation: %s\n", l2.Star(0).Rotation)
	check(runCirc(l2, circuit.New().Add(gates.Z, 0)))
	out, err = l2.ProbeXL(0)
	check(err)
	fmt.Printf("X_L probe after Z_L: %+d  (want -1: the state is |−⟩_L)\n", 1-2*out)

	fmt.Println("\n=== CNOT_L truth table (thesis Table 5.5) ===")
	fmt.Println("initial    expected   simulated")
	for i, cse := range []struct{ c, t, wc, wt int }{
		{0, 0, 0, 0}, {1, 0, 1, 1}, {0, 1, 0, 1}, {1, 1, 1, 0},
	} {
		mc, mt := twoStarTruth(*seed+int64(10+i), gates.CNOT, cse.c, cse.t)
		status := "ok"
		if mc != cse.wc || mt != cse.wt {
			status = "MISMATCH"
		}
		fmt.Printf("|%d%d>_L     |%d%d>_L     |%d%d>_L   %s\n",
			cse.c, cse.t, cse.wc, cse.wt, mc, mt, status)
		if status != "ok" {
			os.Exit(1)
		}
	}

	fmt.Println("\n=== CZ_L phase table (thesis Table 5.6) ===")
	fmt.Println("initial    expected     simulated-phase")
	for i, cse := range []struct{ a, b int }{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		ph := twoStarCZPhase(*seed+int64(20+i), cse.a, cse.b)
		want := complex(1, 0)
		label := fmt.Sprintf("+|%d%d>_L", cse.a, cse.b)
		if cse.a == 1 && cse.b == 1 {
			want = -1
			label = "-|11>_L"
		}
		status := "ok"
		if cmplx.Abs(ph-want) > 1e-6 {
			status = "MISMATCH"
		}
		fmt.Printf("|%d%d>_L     %-10s   %+.3f%+.3fi   %s\n",
			cse.a, cse.b, label, real(ph), imag(ph), status)
		if status != "ok" {
			os.Exit(1)
		}
	}
	fmt.Println("\nPASS: all logical operations verified")
}

func oneStar(seed int64) (*surface.NinjaStarLayer, *layers.QxCore) {
	qx := layers.NewQxCore(rand.New(rand.NewSource(seed)))
	l := surface.NewNinjaStarLayer(qx, surface.Config{Ancilla: surface.AncillaDedicated})
	check(l.CreateQubits(1))
	return l, qx
}

func runCirc(l *surface.NinjaStarLayer, c *circuit.Circuit) error {
	_, err := qpdo.Run(l, c)
	return err
}

func printDataState(l *surface.NinjaStarLayer, qx *layers.QxCore) {
	keep := make([]int, surface.NumData)
	for i := range keep {
		keep[i] = l.Star(0).Data[i]
	}
	sub, err := qx.Vector().ExtractSubsystem(keep)
	check(err)
	fmt.Print(sub.SupportString(1e-9))
}

func twoStarTruth(seed int64, g *gates.Gate, c, t int) (int, int) {
	qx := layers.NewQxCore(rand.New(rand.NewSource(seed)))
	l := surface.NewNinjaStarLayer(qx, surface.Config{Ancilla: surface.AncillaSharedSingle})
	check(l.CreateQubits(2))
	prep := circuit.New().Add(gates.Prep, 0).Add(gates.Prep, 1)
	if c == 1 {
		prep.Add(gates.X, 0)
	}
	if t == 1 {
		prep.Add(gates.X, 1)
	}
	prep.Add(g, 0, 1).Add(gates.Measure, 0).Add(gates.Measure, 1)
	res, err := qpdo.Run(l, prep)
	check(err)
	return res.Last(0), res.Last(1)
}

func twoStarCZPhase(seed int64, a, b int) complex128 {
	qx := layers.NewQxCore(rand.New(rand.NewSource(seed)))
	l := surface.NewNinjaStarLayer(qx, surface.Config{Ancilla: surface.AncillaSharedSingle})
	check(l.CreateQubits(2))
	prep := circuit.New().Add(gates.Prep, 0).Add(gates.Prep, 1)
	if a == 1 {
		prep.Add(gates.X, 0)
	}
	if b == 1 {
		prep.Add(gates.X, 1)
	}
	_, err := qpdo.Run(l, prep)
	check(err)
	before := qx.Vector().Clone()
	_, err = qpdo.Run(l, circuit.New().Add(gates.CZ, 0, 1))
	check(err)
	after := qx.Vector().Amplitudes()
	ref := before.Amplitudes()
	for i := range ref {
		if cmplx.Abs(ref[i]) > 1e-9 {
			return after[i] / ref[i]
		}
	}
	return 0
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "logicalops:", err)
		os.Exit(1)
	}
}
