// Command steanesweep runs the logical-error-rate study on a Steane
// [[7,1,3]] logical qubit: LER versus physical error rate, with and
// without a Pauli frame, on the QPDO oracle stack or the bit-sliced
// Steane frame engines.
//
// Usage:
//
//	steanesweep -type x -mode both -samples 3 -errors 20
//	steanesweep -engine frame -lanes 8 -samples 512 -csv out.csv
//	steanesweep -engine sparse -min 1e-4 -max 2e-3 -points 7
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	lo := flag.Float64("min", 1e-4, "lowest physical error rate of the sweep")
	hi := flag.Float64("max", 1e-2, "highest physical error rate of the sweep")
	points := flag.Int("points", 9, "number of log-spaced PER points")
	etype := flag.String("type", "x", "logical error type: x or z")
	mode := flag.String("mode", "both", "configuration: nopf, pf or both")
	samples := flag.Int("samples", 3, "repetitions per PER point")
	errors := flag.Int("errors", 20, "logical errors per run before termination")
	maxWindows := flag.Int("maxwindows", 400000, "hard cap on windows per run")
	seed := flag.Int64("seed", 2017, "base RNG seed")
	workers := flag.Int("workers", 0, "Monte-Carlo worker pool size (0 = all CPUs); results are identical for any value")
	csvPath := flag.String("csv", "", "also write CSV to this file (suffix _pf/_nopf added in both mode)")
	engineName := flag.String("engine", "stack", "simulation engine: stack (QPDO oracle), frame (bit-sliced Steane frame engine) or sparse (window-skipping variant, fastest at low PER)")
	lanes := flag.Int("lanes", 1, "frame-engine batch width in 64-shot words (1, 2, 4 or 8); folded results are identical at every width")
	flag.Parse()

	engine, err := experiments.ParseEngine(*engineName)
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "steanesweep: "+format+"\n", args...)
		os.Exit(2)
	}
	switch {
	case flag.NArg() > 0:
		fail("unexpected argument %q", flag.Arg(0))
	case err != nil:
		fail("%v", err)
	case math.IsNaN(*lo) || math.IsInf(*lo, 0) || *lo <= 0 || *lo > 1:
		fail("-min must be in (0, 1], got %v", *lo)
	case math.IsNaN(*hi) || math.IsInf(*hi, 0) || *hi < *lo || *hi > 1:
		fail("-max must be in [min, 1], got %v", *hi)
	case !strings.EqualFold(*etype, "x") && !strings.EqualFold(*etype, "z"):
		fail("unknown type %q (want x or z)", *etype)
	case *mode != "nopf" && *mode != "pf" && *mode != "both":
		fail("unknown mode %q (want nopf, pf or both)", *mode)
	case *points < 1:
		fail("-points must be >= 1, got %d", *points)
	case *samples < 0:
		fail("-samples must be >= 0, got %d", *samples)
	case *errors < 1:
		fail("-errors must be >= 1, got %d", *errors)
	case *maxWindows < 1:
		fail("-maxwindows must be >= 1, got %d", *maxWindows)
	case *workers < 0:
		fail("-workers must be >= 0, got %d", *workers)
	case *lanes != 1 && *lanes != 2 && *lanes != 4 && *lanes != 8:
		fail("-lanes must be 1, 2, 4 or 8, got %d", *lanes)
	case *lanes > 1 && engine == experiments.EngineStack:
		fail("-lanes needs a frame engine (-engine frame or sparse)")
	}

	et := experiments.LogicalX
	if strings.EqualFold(*etype, "z") {
		et = experiments.LogicalZ
	}
	cfg := experiments.SteaneSweepConfig{
		Engine:           engine,
		PERs:             experiments.LogSpace(*lo, *hi, *points),
		Samples:          *samples,
		ErrorType:        et,
		MaxLogicalErrors: *errors,
		MaxWindows:       *maxWindows,
		BaseSeed:         *seed,
		Lanes:            *lanes,
		Workers:          *workers,
		Progress: func(i int, per float64) {
			fmt.Fprintf(os.Stderr, "  point %d/%d (PER=%.3e) done\n", i+1, *points, per)
		},
	}

	run := func(withPF bool, label string) []experiments.PointResult {
		c := cfg
		c.WithPauliFrame = withPF
		if withPF {
			c.BaseSeed += 7_777_777
		}
		fmt.Fprintf(os.Stderr, "steane sweep %s (%d points × %d samples, %s errors)...\n",
			label, *points, *samples, et)
		pts, err := experiments.RunSteaneSweep(c)
		if err != nil {
			fmt.Fprintln(os.Stderr, "steanesweep:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.Table(pts, fmt.Sprintf("Steane [[7,1,3]] PER vs LER, logical %s errors, %s", et, label)))
		if th := experiments.PseudoThreshold(pts); !math.IsNaN(th) {
			fmt.Printf("pseudo-threshold (LER = PER crossing): %.3e\n\n", th)
		} else {
			fmt.Println("pseudo-threshold: no crossing in range")
		}
		if *csvPath != "" {
			path := *csvPath
			if *mode == "both" {
				suffix := "_nopf.csv"
				if withPF {
					suffix = "_pf.csv"
				}
				path = strings.TrimSuffix(path, ".csv") + suffix
			}
			if err := os.WriteFile(path, []byte(experiments.CSV(pts)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "steanesweep:", err)
				os.Exit(1)
			}
		}
		return pts
	}

	switch *mode {
	case "nopf":
		run(false, "without Pauli frame")
	case "pf":
		run(true, "with Pauli frame")
	case "both":
		without := run(false, "without Pauli frame")
		with := run(true, "with Pauli frame")
		fmt.Println("# overlay: PER, LER without PF, LER with PF, delta")
		for i := range without {
			if i >= len(with) {
				break
			}
			fmt.Printf("%-12.4e %-12.4e %-12.4e %+.2e\n",
				without[i].PER, without[i].MeanLER(), with[i].MeanLER(),
				without[i].MeanLER()-with[i].MeanLER())
		}
	}
}
