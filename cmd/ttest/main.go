// Command ttest regenerates the statistical-analysis figures of thesis
// §5.3.2: the absolute LER difference between runs with and without a
// Pauli frame with σmax bands (Figs 5.17/5.18), the coefficient of
// variation of window counts (Figs 5.19/5.20), and the ρ-values of the
// independent and paired t-tests (Figs 5.21–5.24).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	rng := flag.String("range", "full", "PER range: full or zoom")
	points := flag.Int("points", 7, "log-spaced PER points")
	samples := flag.Int("samples", 5, "repetitions per point per configuration (thesis: 10/20)")
	errors := flag.Int("errors", 15, "logical errors per run (thesis: 50)")
	maxWindows := flag.Int("maxwindows", 250000, "window cap per run")
	etype := flag.String("type", "x", "logical error type: x or z")
	seed := flag.Int64("seed", 99, "base seed")
	workers := flag.Int("workers", 0, "Monte-Carlo worker pool size (0 = all CPUs); results are identical for any value")
	flag.Parse()

	lo, hi := 1e-4, 1e-2
	if *rng == "zoom" {
		lo, hi = 3e-4, 5e-4
	}
	et := experiments.LogicalX
	if strings.EqualFold(*etype, "z") {
		et = experiments.LogicalZ
	}

	fmt.Fprintf(os.Stderr, "paired sweeps: %d points × %d samples × 2 configurations...\n", *points, *samples)
	pair, err := experiments.RunPairedSweeps(experiments.SweepConfig{
		PERs:             experiments.LogSpace(lo, hi, *points),
		Samples:          *samples,
		ErrorType:        et,
		MaxLogicalErrors: *errors,
		MaxWindows:       *maxWindows,
		BaseSeed:         *seed,
		Workers:          *workers,
		Progress: func(i int, per float64) {
			fmt.Fprintf(os.Stderr, "  point %d/%d (PER=%.3e)\n", i+1, *points, per)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttest:", err)
		os.Exit(1)
	}

	fmt.Printf("# absolute LER difference δPL = PL(no PF) − PL(PF), logical %s errors (Figs 5.17/5.18)\n", et)
	fmt.Printf("%-12s %-14s %-12s %s\n", "PER", "delta", "sigma_max", "within ±sigma_max?")
	within := 0
	diffs := pair.DiffSeries()
	for _, d := range diffs {
		in := "yes"
		if d.Delta > d.SigmaMax || d.Delta < -d.SigmaMax {
			in = "no"
		} else {
			within++
		}
		fmt.Printf("%-12.4e %+-14.4e %-12.4e %s\n", d.PER, d.Delta, d.SigmaMax, in)
	}
	fmt.Printf("-> %d/%d points within ±σmax (thesis: nearly all)\n\n", within, len(diffs))

	fmt.Println("# coefficient of variation of window counts (Figs 5.19/5.20; thesis mean ≈13%)")
	fmt.Printf("%-12s %-12s %-12s\n", "PER", "cv_noPF", "cv_PF")
	var cvSum float64
	cvs := pair.CVSeries()
	for _, c := range cvs {
		fmt.Printf("%-12.4e %-12.4f %-12.4f\n", c.PER, c.CVWithout, c.CVWith)
		cvSum += (c.CVWithout + c.CVWith) / 2
	}
	fmt.Printf("-> mean CV: %.1f%%\n\n", 100*cvSum/float64(len(cvs)))

	ts, err := pair.TTestSeries()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttest:", err)
		os.Exit(1)
	}
	fmt.Println("# t-test ρ-values per PER (Figs 5.21-5.24)")
	fmt.Printf("%-12s %-14s %-14s\n", "PER", "independent", "paired")
	for _, p := range ts {
		fmt.Printf("%-12.4e %-14.4f %-14.4f\n", p.PER, p.IndependentP, p.PairedPVal)
	}
	fmt.Printf("-> mean independent ρ: %.3f (thesis: ≈0.5, the null expectation)\n", experiments.MeanP(ts))
	if experiments.Significant(ts) {
		fmt.Println("-> CONSISTENTLY SIGNIFICANT: the Pauli frame changed the LER (contradicts the thesis)")
		os.Exit(1)
	}
	fmt.Println("-> no statistically significant Pauli frame effect on the LER (thesis conclusion reproduced)")
}
