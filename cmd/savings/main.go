// Command savings regenerates the Pauli-frame savings analysis of thesis
// §5.3.2: the percentage of gates and time slots the Pauli frame filters
// during LER simulations (Figs 5.25/5.26) and the analytic upper bound on
// the relative LER improvement versus code distance (Eq. 5.12, Fig 5.27).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	points := flag.Int("points", 7, "log-spaced PER points (1e-4..1e-2)")
	samples := flag.Int("samples", 3, "repetitions per point")
	errors := flag.Int("errors", 15, "logical errors per run")
	maxWindows := flag.Int("maxwindows", 250000, "window cap per run")
	seed := flag.Int64("seed", 55, "base seed")
	boundOnly := flag.Bool("bound", false, "print only the Fig 5.27 upper-bound curve")
	tsESM := flag.Int("tsesm", 8, "time slots per ESM round for the bound")
	flag.Parse()

	if !*boundOnly {
		fmt.Fprintln(os.Stderr, "running PF sweeps for savings counters...")
		pts, err := experiments.RunSweep(experiments.SweepConfig{
			PERs:             experiments.LogSpace(1e-4, 1e-2, *points),
			Samples:          *samples,
			WithPauliFrame:   true,
			MaxLogicalErrors: *errors,
			MaxWindows:       *maxWindows,
			BaseSeed:         *seed,
			Progress: func(i int, per float64) {
				fmt.Fprintf(os.Stderr, "  point %d/%d (PER=%.3e)\n", i+1, *points, per)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "savings:", err)
			os.Exit(1)
		}
		fmt.Println("# gates and time slots saved by the Pauli frame (Figs 5.25/5.26)")
		fmt.Printf("%-12s %-16s %-16s\n", "PER", "gates_saved_%", "slots_saved_%")
		for _, p := range pts {
			fmt.Printf("%-12.4e %-16.4f %-16.4f\n",
				p.PER, 100*mean(p.GatesSaved), 100*mean(p.SlotsSaved))
		}
		fmt.Printf("-> ceiling: 1 correction slot per %d-slot window = %.1f%% of slots (thesis §5.3.2)\n\n",
			experiments.WindowTimeSlots(3, *tsESM, true), 100.0/17)
	}

	fmt.Printf("# upper bound on relative LER improvement by a Pauli frame, tsESM=%d (Eq. 5.12, Fig 5.27)\n", *tsESM)
	fmt.Printf("%-10s %-12s\n", "distance", "bound_%")
	for d := 3; d <= 11; d++ {
		b := experiments.UpperBoundRelativeImprovement(d, *tsESM)
		fmt.Printf("%-10d %-12.3f %s\n", d, 100*b, bar(int(1000*b)))
	}
	fmt.Println("-> the bound converges to 0 with distance: no LER benefit from a Pauli frame at any scale")
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func bar(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
