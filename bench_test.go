package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/chp"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/experiments"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/randcirc"
	"repro/internal/statevec"
	"repro/internal/stats"
	"repro/internal/surface"
	"repro/internal/surfaced"
	"repro/internal/timing"
)

// The benchmarks below regenerate, at benchmark scale, every table and
// figure of the thesis evaluation (Chapter 5). Each bench logs one
// summary line of the series it reproduces (visible with -v); the cmd/
// tools regenerate the full-resolution versions.

var logOnce sync.Map

func logSeries(b *testing.B, key, format string, args ...interface{}) {
	if _, loaded := logOnce.LoadOrStore(key, true); !loaded {
		b.Logf(format, args...)
	}
}

// BenchmarkTable58ESMCircuit regenerates the ESM circuit of Table 5.8
// (8 time slots, 48 operations) and measures its generation cost.
func BenchmarkTable58ESMCircuit(b *testing.B) {
	st := &surface.Star{Mode: surface.AncillaDedicated}
	for i := 0; i < surface.NumData; i++ {
		st.Data[i] = i
	}
	for i := 0; i < surface.NumAncilla; i++ {
		st.Anc[i] = surface.NumData + i
	}
	var c *circuit.Circuit
	for i := 0; i < b.N; i++ {
		c = st.ESMCircuit()
	}
	logSeries(b, "t58", "Table 5.8: ESM circuit has %d slots / %d ops (thesis: 8 / 48)",
		c.NumSlots(), c.NumOps())
}

// BenchmarkListing51InitZeroL regenerates the |0⟩_L initialization of
// Listing 5.1 on the state-vector back-end.
func BenchmarkListing51InitZeroL(b *testing.B) {
	var support int
	for i := 0; i < b.N; i++ {
		qx := layers.NewQxCore(rand.New(rand.NewSource(int64(i))))
		l := surface.NewNinjaStarLayer(qx, surface.Config{Ancilla: surface.AncillaDedicated})
		if err := l.CreateQubits(1); err != nil {
			b.Fatal(err)
		}
		if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
			b.Fatal(err)
		}
		keep := make([]int, surface.NumData)
		for j := range keep {
			keep[j] = l.Star(0).Data[j]
		}
		sub, err := qx.Vector().ExtractSubsystem(keep)
		if err != nil {
			b.Fatal(err)
		}
		support = len(sub.Support(1e-9))
	}
	logSeries(b, "l51", "Listing 5.1: |0⟩_L support has %d basis states of amplitude 0.25 (thesis: 16)", support)
}

// BenchmarkTable55CNOTL regenerates one row of the CNOT_L truth table.
func BenchmarkTable55CNOTL(b *testing.B) {
	var mc, mt int
	for i := 0; i < b.N; i++ {
		qx := layers.NewQxCore(rand.New(rand.NewSource(int64(i))))
		l := surface.NewNinjaStarLayer(qx, surface.Config{Ancilla: surface.AncillaSharedSingle})
		if err := l.CreateQubits(2); err != nil {
			b.Fatal(err)
		}
		c := circuit.New().Add(gates.Prep, 0).Add(gates.Prep, 1).
			Add(gates.X, 0).Add(gates.CNOT, 0, 1).
			Add(gates.Measure, 0).Add(gates.Measure, 1)
		res, err := qpdo.Run(l, c)
		if err != nil {
			b.Fatal(err)
		}
		mc, mt = res.Last(0), res.Last(1)
	}
	logSeries(b, "t55", "Table 5.5: CNOT_L|10⟩_L → |%d%d⟩_L (thesis: |11⟩_L)", mc, mt)
}

// BenchmarkTable56CZL regenerates the −|11⟩_L phase row of Table 5.6.
func BenchmarkTable56CZL(b *testing.B) {
	var phase complex128
	for i := 0; i < b.N; i++ {
		qx := layers.NewQxCore(rand.New(rand.NewSource(int64(i))))
		l := surface.NewNinjaStarLayer(qx, surface.Config{Ancilla: surface.AncillaSharedSingle})
		if err := l.CreateQubits(2); err != nil {
			b.Fatal(err)
		}
		prep := circuit.New().Add(gates.Prep, 0).Add(gates.Prep, 1).
			Add(gates.X, 0).Add(gates.X, 1)
		if _, err := qpdo.Run(l, prep); err != nil {
			b.Fatal(err)
		}
		before := qx.Vector().Clone()
		if _, err := qpdo.Run(l, circuit.New().Add(gates.CZ, 0, 1)); err != nil {
			b.Fatal(err)
		}
		ref, after := before.Amplitudes(), qx.Vector().Amplitudes()
		for j := range ref {
			if real(ref[j])*real(ref[j])+imag(ref[j])*imag(ref[j]) > 1e-18 {
				phase = after[j] / ref[j]
				break
			}
		}
	}
	logSeries(b, "t56", "Table 5.6: CZ_L|11⟩_L phase = %.3f (thesis: −1)", real(phase))
}

// BenchmarkFig57OddBell regenerates one odd-Bell-state shot with a Pauli
// frame on the stabilizer back-end (Fig 5.7 histogram unit).
func BenchmarkFig57OddBell(b *testing.B) {
	anti := 0
	for i := 0; i < b.N; i++ {
		ch := layers.NewChpCore(rand.New(rand.NewSource(int64(i))))
		pf := layers.NewPauliFrameLayer(ch)
		l := surface.NewNinjaStarLayer(pf, surface.Config{Ancilla: surface.AncillaDedicated})
		if err := l.CreateQubits(2); err != nil {
			b.Fatal(err)
		}
		c := circuit.New().Add(gates.Prep, 0).Add(gates.Prep, 1).
			Add(gates.H, 0).Add(gates.CNOT, 0, 1).Add(gates.X, 0).
			Add(gates.Measure, 0).Add(gates.Measure, 1)
		res, err := qpdo.Run(l, c)
		if err != nil {
			b.Fatal(err)
		}
		if res.Last(0) != res.Last(1) {
			anti++
		}
	}
	logSeries(b, "f57", "Fig 5.7: %d/%d odd-Bell shots anti-correlated (thesis: all)", anti, b.N)
}

// benchLER runs one small LER computation.
func benchLER(b *testing.B, withPF bool, key, figure string) {
	var last experiments.LERResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunLER(experiments.LERConfig{
			PER:              3e-3,
			WithPauliFrame:   withPF,
			MaxLogicalErrors: 3,
			MaxWindows:       20000,
			Seed:             int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	logSeries(b, key, "%s: PER=3e-3 → LER=%.2e over %d windows (PF=%v)",
		figure, last.LER, last.Windows, withPF)
}

// BenchmarkFig511LERWithoutPF regenerates one point of the Fig 5.11/5.12
// curves (PER vs LER without Pauli frame).
func BenchmarkFig511LERWithoutPF(b *testing.B) {
	benchLER(b, false, "f511", "Fig 5.11")
}

// BenchmarkFig513LERWithPF regenerates one point of the Fig 5.13/5.14
// curves (PER vs LER with Pauli frame).
func BenchmarkFig513LERWithPF(b *testing.B) {
	benchLER(b, true, "f513", "Fig 5.13")
}

// BenchmarkFig515Overlay regenerates a two-point overlay of the paired
// curves of Figs 5.15/5.16 and derives the Fig 5.17 difference, the
// Fig 5.19 coefficient of variation and the Fig 5.21/5.22 t-tests.
func BenchmarkFig515Overlay(b *testing.B) {
	var pair experiments.PairedSweeps
	for i := 0; i < b.N; i++ {
		var err error
		pair, err = experiments.RunPairedSweeps(experiments.SweepConfig{
			PERs:             []float64{3e-3},
			Samples:          2,
			MaxLogicalErrors: 3,
			MaxWindows:       20000,
			BaseSeed:         int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	d := pair.DiffSeries()[0]
	cv := pair.CVSeries()[0]
	ts, err := pair.TTestSeries()
	if err != nil {
		b.Fatal(err)
	}
	logSeries(b, "f515",
		"Figs 5.15-5.22: δPL=%.1e (σmax=%.1e), CV=%.2f/%.2f, ρ_ind=%.2f ρ_pair=%.2f",
		d.Delta, d.SigmaMax, cv.CVWithout, cv.CVWith, ts[0].IndependentP, ts[0].PairedPVal)
}

// BenchmarkFig525Savings regenerates the gates/slots-saved series unit of
// Figs 5.25/5.26.
func BenchmarkFig525Savings(b *testing.B) {
	var r experiments.LERResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunLER(experiments.LERConfig{
			PER:              5e-3,
			WithPauliFrame:   true,
			MaxLogicalErrors: 3,
			MaxWindows:       20000,
			Seed:             int64(i + 7),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	logSeries(b, "f525", "Figs 5.25/5.26: gates saved %.3f%%, slots saved %.3f%% (ceiling 5.9%%)",
		100*r.GatesSavedFrac(), 100*r.SlotsSavedFrac())
}

// BenchmarkFig527UpperBound regenerates the Eq. 5.12 curve of Fig 5.27.
func BenchmarkFig527UpperBound(b *testing.B) {
	var at3, at11 float64
	for i := 0; i < b.N; i++ {
		at3 = experiments.UpperBoundRelativeImprovement(3, 8)
		at11 = experiments.UpperBoundRelativeImprovement(11, 8)
	}
	logSeries(b, "f527", "Fig 5.27: bound d=3 → %.2f%%, d=11 → %.2f%% (thesis: 5.9%% → <1.3%%)",
		100*at3, 100*at11)
}

// BenchmarkFig33Schedules regenerates the schedule comparison of thesis
// Fig 3.3: the per-window latency with and without a Pauli frame and the
// relaxed decoder deadline.
func BenchmarkFig33Schedules(b *testing.B) {
	var without, with, deadline int
	for i := 0; i < b.N; i++ {
		p := timing.SC17(8)
		without = timing.WindowLatencyWithoutFrame(p)
		with = timing.WindowLatencyWithFrame(p)
		deadline = timing.DecoderDeadlineWithFrame(p)
	}
	logSeries(b, "f33",
		"Fig 3.3: window %d slots serial vs %d pipelined; decoder deadline 0 → %d slots",
		without, with, deadline)
}

// BenchmarkFutureWorkDistance runs the d=5 generic-surface-code window —
// the thesis' future-work experiment (Chapter 6) — and reports the
// Eq. 5.12 ceiling it confirms.
func BenchmarkFutureWorkDistance(b *testing.B) {
	ch := layers.NewChpCore(rand.New(rand.NewSource(1)))
	plane, err := surfaced.NewPlane(ch, 5)
	if err != nil {
		b.Fatal(err)
	}
	if err := plane.InitZero(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plane.RunWindow(); err != nil {
			b.Fatal(err)
		}
	}
	logSeries(b, "fw-d5", "future work: d=5 window (4 rounds, 49 data qubits); PF ceiling %.2f%%",
		100*experiments.UpperBoundRelativeImprovement(5, 8))
}

// BenchmarkParallelSweep compares the Monte-Carlo sweep at Workers=1
// against Workers=NumCPU on the same (point × sample) grid — the
// wall-clock ratio is the parallel engine's speedup (ideally ≈ core
// count; the outputs are bit-identical either way).
func BenchmarkParallelSweep(b *testing.B) {
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := experiments.RunSweep(experiments.SweepConfig{
					PERs:             []float64{3e-3, 5e-3, 8e-3},
					Samples:          4,
					MaxLogicalErrors: 3,
					MaxWindows:       20000,
					BaseSeed:         2017,
					Workers:          workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(pts) != 3 {
					b.Fatalf("sweep points: %d", len(pts))
				}
			}
		}
	}
	b.Run("workers=1", bench(1))
	b.Run(fmt.Sprintf("workers=%d", runtime.NumCPU()), bench(runtime.NumCPU()))
}

// --- substrate and ablation benchmarks -------------------------------

// BenchmarkCHPESMRound measures one full ESM round on the bit-packed
// stabilizer tableau.
func BenchmarkCHPESMRound(b *testing.B) {
	ch := layers.NewChpCore(rand.New(rand.NewSource(1)))
	l := surface.NewNinjaStarLayer(ch, surface.Config{Ancilla: surface.AncillaDedicated})
	if err := l.CreateQubits(1); err != nil {
		b.Fatal(err)
	}
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.RunESMRound(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCHPWindow measures a full QEC window (2 rounds + decode).
func BenchmarkCHPWindow(b *testing.B) {
	ch := layers.NewChpCore(rand.New(rand.NewSource(1)))
	l := surface.NewNinjaStarLayer(ch, surface.Config{Ancilla: surface.AncillaDedicated})
	if err := l.CreateQubits(1); err != nil {
		b.Fatal(err)
	}
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.RunWindow(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCHPGates measures raw tableau gate throughput at 17 qubits.
func BenchmarkCHPGates(b *testing.B) {
	t := chp.New(17, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.H(i % 17)
		t.CNOT(i%17, (i+1)%17)
		t.S((i + 2) % 17)
	}
}

// BenchmarkCHPMeasure measures tableau measurement cost.
func BenchmarkCHPMeasure(b *testing.B) {
	t := chp.New(17, rand.New(rand.NewSource(1)))
	for q := 0; q < 17; q++ {
		t.H(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.H(i % 17)
		t.MeasureBit(i % 17)
	}
}

// BenchmarkCHPTransposedGates exercises the word-parallel gate kernels of
// the column-major tableau across representative sizes, including ones
// whose 2n+1 rows span multiple 64-bit column words (n ≥ 32).
func BenchmarkCHPTransposedGates(b *testing.B) {
	for _, n := range []int{17, 49, 81} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := chp.New(n, rand.New(rand.NewSource(1)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.H(i % n)
				t.CNOT(i%n, (i+1)%n)
				t.S((i + 2) % n)
				t.Sdg((i + 3) % n)
				t.CZ(i%n, (i+5)%n)
			}
		})
	}
}

// BenchmarkCHPTransposedMeasure exercises both measurement branches of
// the column-major tableau: the H-then-measure loop takes the random
// (word-parallel batch absorb) branch, the re-measure the deterministic
// (per-column popcount) branch.
func BenchmarkCHPTransposedMeasure(b *testing.B) {
	for _, n := range []int{17, 49, 81} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := chp.New(n, rand.New(rand.NewSource(1)))
			for q := 0; q < n; q++ {
				t.H(q)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.H(i % n)
				t.MeasureBit(i % n)
				t.MeasureBit(i % n)
			}
		})
	}
}

// BenchmarkStatevecGate measures state-vector gate application at the
// 17-qubit plane size.
func BenchmarkStatevecGate(b *testing.B) {
	s := statevec.New(17, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyGate(gates.H, i%17)
	}
}

// BenchmarkStatevecCNOT measures two-qubit application cost.
func BenchmarkStatevecCNOT(b *testing.B) {
	s := statevec.New(17, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyGate(gates.CNOT, i%17, (i+1)%17)
	}
}

// BenchmarkPFUProcess measures the Pauli arbiter's routing throughput —
// the operation the thesis proposes to put in hardware.
func BenchmarkPFUProcess(b *testing.B) {
	u := core.NewPFU(17)
	ops := []circuit.Operation{
		circuit.NewOp(gates.X, 3),
		circuit.NewOp(gates.H, 3),
		circuit.NewOp(gates.CNOT, 3, 4),
		circuit.NewOp(gates.Z, 4),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Process(ops[i%len(ops)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecoderLUT measures windowed decoding cost.
func BenchmarkDecoderLUT(b *testing.B) {
	lut := decoder.BuildLUT(surface.ZSupports(surface.RotNormal), surface.NumData)
	w := decoder.NewWindowDecoder(lut)
	s := lut.SyndromeOf([]int{4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Decode(s, s)
	}
}

// BenchmarkPauliFrameLayerRandomCircuit measures the layer's circuit
// rewriting over the thesis gate set.
func BenchmarkPauliFrameLayerRandomCircuit(b *testing.B) {
	circ := randcirc.Generate(randcirc.Config{Qubits: 10, Gates: 1000, CliffordOnly: true},
		rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := layers.NewChpCore(rand.New(rand.NewSource(int64(i))))
		pf := layers.NewPauliFrameLayer(ch)
		if err := pf.CreateQubits(10); err != nil {
			b.Fatal(err)
		}
		if _, err := qpdo.Run(pf, circ.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTTest measures the statistics kernel.
func BenchmarkTTest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 20)
	y := make([]float64, 20)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.TTestIndependent(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSharedVsDedicatedESM compares the two ancilla
// provisioning modes' circuit sizes (DESIGN.md ablation).
func BenchmarkAblationSharedVsDedicatedESM(b *testing.B) {
	mk := func(mode surface.AncillaMode) *surface.Star {
		st := &surface.Star{Mode: mode}
		for i := 0; i < surface.NumData; i++ {
			st.Data[i] = i
		}
		for i := 0; i < surface.NumAncilla; i++ {
			if mode == surface.AncillaSharedSingle {
				st.Anc[i] = surface.NumData
			} else {
				st.Anc[i] = surface.NumData + i
			}
		}
		return st
	}
	ded, shr := mk(surface.AncillaDedicated), mk(surface.AncillaSharedSingle)
	var dedSlots, shrSlots int
	for i := 0; i < b.N; i++ {
		dedSlots = ded.ESMCircuit().NumSlots()
		shrSlots = shr.ESMCircuit().NumSlots()
	}
	logSeries(b, "ablation-esm",
		"ablation: parallel ESM %d slots vs serialized shared-ancilla ESM %d slots",
		dedSlots, shrSlots)
}

// BenchmarkAblationErrorLayerOverhead compares a window with and without
// the error layer in the stack (DESIGN.md ablation: stack position cost).
func BenchmarkAblationErrorLayerOverhead(b *testing.B) {
	build := func(withErr bool) *surface.NinjaStarLayer {
		var stack qpdo.Core = layers.NewChpCore(rand.New(rand.NewSource(1)))
		if withErr {
			stack = layers.NewErrorLayer(stack, 1e-3, rand.New(rand.NewSource(2)))
		}
		l := surface.NewNinjaStarLayer(stack, surface.Config{Ancilla: surface.AncillaDedicated})
		if err := l.CreateQubits(1); err != nil {
			b.Fatal(err)
		}
		if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
			b.Fatal(err)
		}
		return l
	}
	b.Run("bare", func(b *testing.B) {
		l := build(false)
		for i := 0; i < b.N; i++ {
			if _, err := l.RunWindow(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("with-error-layer", func(b *testing.B) {
		l := build(true)
		for i := 0; i < b.N; i++ {
			if _, err := l.RunWindow(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
